/**
 * @file
 * thermctl-faultline: deterministic fault injection.
 *
 * A FaultPlan is a seeded set of rules, each bound to a named fault
 * *site* in production code (e.g. "serve.sock.write"). Sites are tapped
 * through the THERMCTL_FAULT_POINT macro, which is zero-cost when the
 * build option THERMCTL_FAULTS is OFF (the macro expands to an empty
 * constexpr decision and every branch on it folds away) and a single
 * relaxed atomic load when compiled in but no plan is armed.
 *
 * Determinism: each rule owns an Rng forked from the plan seed and the
 * site-name hash, and decisions depend only on (seed, site, per-rule
 * hit index). Replaying the same plan therefore reproduces the same
 * per-site fault sequence regardless of thread interleaving, which is
 * what makes chaos-soak failures replayable from a single seed.
 *
 * Plan grammar (semicolon-separated clauses):
 *
 *     seed=N
 *     <site>=<kind>[@prob][:key=value]...
 *
 * kinds:  abort  short  eintr  stall  torn
 * keys:   every=N  (fire on every Nth hit)
 *         after=N  (ignore the first N hits)
 *         max=N    (fire at most N times)
 *         ms=N     (stall duration, milliseconds)
 *
 * Example:
 *
 *     seed=42;serve.sock.write=short@0.25;sched.batch=stall@0.2:ms=50
 */

#ifndef THERMCTL_FAULT_FAULT_HH
#define THERMCTL_FAULT_FAULT_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hh"
#include "common/random.hh"
#include "common/thread_annotations.hh"

namespace thermctl::fault
{

/** What a fired fault point should do to the surrounding code. */
enum class FaultKind : std::uint8_t {
    None = 0,  ///< nothing fired
    Abort = 1, ///< fail the operation (connection reset, lost file, ...)
    ShortIo = 2, ///< complete only part of the requested I/O
    Eintr = 3,   ///< behave as if interrupted by a signal
    Stall = 4,   ///< sleep for stall_ms before proceeding
    Torn = 5,    ///< publish a truncated/partial artifact
};

/** @return the grammar keyword for `kind` ("abort", "short", ...). */
std::string_view faultKindName(FaultKind kind);

/**
 * The verdict a fault point receives. Default-constructed means "no
 * fault"; the inline accessors let call sites branch cheaply and read
 * naturally: `if (decision.abort()) ...`.
 */
struct FaultDecision
{
    FaultKind kind = FaultKind::None;
    std::uint32_t stall_ms = 0;

    constexpr bool fired() const { return kind != FaultKind::None; }
    constexpr bool abort() const { return kind == FaultKind::Abort; }
    constexpr bool shortIo() const { return kind == FaultKind::ShortIo; }
    constexpr bool eintr() const { return kind == FaultKind::Eintr; }
    constexpr bool stall() const { return kind == FaultKind::Stall; }
    constexpr bool torn() const { return kind == FaultKind::Torn; }
};

/** One clause of a plan: when site is hit, maybe inject kind. */
struct FaultRule
{
    std::string site;
    FaultKind kind = FaultKind::None;
    double probability = 1.0;   ///< chance of firing once the gates pass
    std::uint64_t every = 0;    ///< fire only on every Nth hit (0 = all)
    std::uint64_t after = 0;    ///< skip the first N hits
    std::uint64_t max_fires = 0; ///< stop after N fires (0 = unlimited)
    std::uint32_t stall_ms = 10; ///< Stall duration
};

/** A seeded, replayable set of fault rules. */
struct FaultPlan
{
    std::uint64_t seed = 1;
    std::vector<FaultRule> rules;

    /**
     * Parse the grammar above; calls fatal() on a malformed spec (the
     * CLI entry point). tryParse() is the non-throwing variant.
     */
    static FaultPlan parse(std::string_view spec);
    static bool tryParse(std::string_view spec, FaultPlan &out,
                         std::string &error);

    /** @return the plan re-rendered in grammar form (for logs). */
    std::string describe() const;
};

/** Journal entry: one decision taken at a site (fired or not). */
struct FiredFault
{
    std::string site;
    std::uint64_t hit = 0; ///< 1-based per-site hit index
    FaultKind kind = FaultKind::None;
};

/**
 * Process-wide fault injector. Disarmed by default; arm() installs a
 * plan, disarm() removes it. probe() is the hot path: one relaxed
 * atomic load when disarmed, a short mutex-guarded rule scan when
 * armed (chaos builds only care about determinism, not speed).
 */
class FaultInjector
{
  public:
    static FaultInjector &instance();

    void arm(const FaultPlan &plan);
    void disarm();
    bool armed() const { return armed_.load(std::memory_order_relaxed); }

    /** Hot-path entry used by THERMCTL_FAULT_POINT. */
    FaultDecision
    probe(std::string_view site)
    {
        if (!armed())
            return FaultDecision{};
        return decide(site);
    }

    /** Fired-fault journal since the last arm() (fired entries only). */
    std::vector<FiredFault> firedLog() const;

    /** Number of faults fired since the last arm(). */
    std::uint64_t firedCount() const;

  private:
    FaultInjector() = default;

    struct RuleState
    {
        FaultRule rule;
        Rng rng{1};
        std::uint64_t hits = 0;
        std::uint64_t fires = 0;
    };

    FaultDecision decide(std::string_view site) THERMCTL_EXCLUDES(mutex_);

    std::atomic<bool> armed_{false};
    mutable Mutex mutex_;
    std::vector<RuleState> states_ THERMCTL_GUARDED_BY(mutex_);
    std::vector<FiredFault> fired_ THERMCTL_GUARDED_BY(mutex_);
};

} // namespace thermctl::fault

/**
 * Production hook. `site` must be a string literal naming the fault
 * point; the macro yields a FaultDecision. With THERMCTL_FAULTS=OFF
 * this is a constexpr empty decision, so `if (THERMCTL_FAULT_POINT(
 * "x").abort())` compiles to nothing at all.
 */
#if defined(THERMCTL_FAULTS_ENABLED) && THERMCTL_FAULTS_ENABLED
#define THERMCTL_FAULT_POINT(site)                                       \
    (::thermctl::fault::FaultInjector::instance().probe(site))
#else
#define THERMCTL_FAULT_POINT(site) (::thermctl::fault::FaultDecision{})
#endif

#endif // THERMCTL_FAULT_FAULT_HH
