#include "fault/fault.hh"

#include <sstream>

#include "common/hash.hh"
#include "common/logging.hh"

namespace thermctl::fault
{
namespace
{

/** All grammar keywords, in enum order. */
constexpr std::string_view kKindNames[] = {"none", "abort", "short",
                                           "eintr", "stall", "torn"};

bool
parseKind(std::string_view word, FaultKind &out)
{
    for (std::size_t i = 1; i < std::size(kKindNames); ++i) {
        if (word == kKindNames[i]) {
            out = static_cast<FaultKind>(i);
            return true;
        }
    }
    return false;
}

bool
parseU64(std::string_view word, std::uint64_t &out)
{
    if (word.empty())
        return false;
    std::uint64_t value = 0;
    for (char c : word) {
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = value;
    return true;
}

bool
parseProbability(std::string_view word, double &out)
{
    if (word.empty())
        return false;
    try {
        std::size_t used = 0;
        double value = std::stod(std::string(word), &used);
        if (used != word.size() || value < 0.0 || value > 1.0)
            return false;
        out = value;
        return true;
    } catch (const std::exception &) {
        return false;
    }
}

std::vector<std::string_view>
split(std::string_view text, char sep)
{
    std::vector<std::string_view> parts;
    while (true) {
        std::size_t pos = text.find(sep);
        parts.push_back(text.substr(0, pos));
        if (pos == std::string_view::npos)
            break;
        text.remove_prefix(pos + 1);
    }
    return parts;
}

/**
 * Parse one rule clause: site=kind[@prob][:key=value]... The "@prob"
 * suffix may appear on the kind word or on any option word.
 */
bool
parseRule(std::string_view clause, FaultRule &rule, std::string &error)
{
    std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos || eq == 0) {
        error = "expected site=kind in '" + std::string(clause) + "'";
        return false;
    }
    rule.site = std::string(clause.substr(0, eq));
    std::string_view rest = clause.substr(eq + 1);

    bool first = true;
    for (std::string_view word : split(rest, ':')) {
        std::size_t at = word.find('@');
        if (at != std::string_view::npos) {
            if (!parseProbability(word.substr(at + 1), rule.probability)) {
                error = "bad probability in '" + std::string(word)
                        + "' (want @p with p in [0,1])";
                return false;
            }
            word = word.substr(0, at);
        }
        if (first) {
            first = false;
            if (!parseKind(word, rule.kind)) {
                error = "unknown fault kind '" + std::string(word)
                        + "' (want abort|short|eintr|stall|torn)";
                return false;
            }
            continue;
        }
        if (word.empty())
            continue; // a bare "@p" option word
        std::size_t opt_eq = word.find('=');
        if (opt_eq == std::string_view::npos) {
            error = "expected key=value option, got '" + std::string(word)
                    + "'";
            return false;
        }
        std::string_view key = word.substr(0, opt_eq);
        std::string_view value = word.substr(opt_eq + 1);
        std::uint64_t number = 0;
        if (!parseU64(value, number)) {
            error = "bad integer in '" + std::string(word) + "'";
            return false;
        }
        if (key == "every") {
            rule.every = number;
        } else if (key == "after") {
            rule.after = number;
        } else if (key == "max") {
            rule.max_fires = number;
        } else if (key == "ms") {
            rule.stall_ms = static_cast<std::uint32_t>(number);
        } else {
            error = "unknown option '" + std::string(key)
                    + "' (want every|after|max|ms)";
            return false;
        }
    }
    return true;
}

} // namespace

std::string_view
faultKindName(FaultKind kind)
{
    auto index = static_cast<std::size_t>(kind);
    if (index >= std::size(kKindNames))
        return "invalid";
    return kKindNames[index];
}

bool
FaultPlan::tryParse(std::string_view spec, FaultPlan &out,
                    std::string &error)
{
    FaultPlan plan;
    for (std::string_view clause : split(spec, ';')) {
        if (clause.empty())
            continue;
        if (clause.substr(0, 5) == "seed=") {
            if (!parseU64(clause.substr(5), plan.seed)) {
                error = "bad seed in '" + std::string(clause) + "'";
                return false;
            }
            continue;
        }
        FaultRule rule;
        if (!parseRule(clause, rule, error))
            return false;
        plan.rules.push_back(std::move(rule));
    }
    if (plan.rules.empty()) {
        error = "fault plan has no rules";
        return false;
    }
    out = std::move(plan);
    return true;
}

FaultPlan
FaultPlan::parse(std::string_view spec)
{
    FaultPlan plan;
    std::string error;
    if (!tryParse(spec, plan, error))
        fatal("--fault-plan: ", error);
    return plan;
}

std::string
FaultPlan::describe() const
{
    std::ostringstream os;
    os << "seed=" << seed;
    for (const FaultRule &rule : rules) {
        os << ';' << rule.site << '=' << faultKindName(rule.kind);
        if (rule.probability != 1.0)
            os << '@' << rule.probability;
        if (rule.every)
            os << ":every=" << rule.every;
        if (rule.after)
            os << ":after=" << rule.after;
        if (rule.max_fires)
            os << ":max=" << rule.max_fires;
        if (rule.kind == FaultKind::Stall)
            os << ":ms=" << rule.stall_ms;
    }
    return os.str();
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::arm(const FaultPlan &plan)
{
    MutexLock lock(mutex_);
    states_.clear();
    fired_.clear();
    states_.reserve(plan.rules.size());
    for (const FaultRule &rule : plan.rules) {
        RuleState state;
        state.rule = rule;
        // Each rule draws from an independent stream derived from the
        // plan seed and the site name, so decisions depend only on
        // (seed, site, hit index) — never on thread interleaving.
        state.rng = Rng(plan.seed).fork(hashString(rule.site));
        states_.push_back(std::move(state));
    }
    armed_.store(true, std::memory_order_release);
}

void
FaultInjector::disarm()
{
    armed_.store(false, std::memory_order_release);
    MutexLock lock(mutex_);
    states_.clear();
}

FaultDecision
FaultInjector::decide(std::string_view site)
{
    MutexLock lock(mutex_);
    for (RuleState &state : states_) {
        if (state.rule.site != site)
            continue;
        std::uint64_t hit = ++state.hits;
        if (hit <= state.rule.after)
            continue;
        if (state.rule.every && (hit - state.rule.after) % state.rule.every)
            continue;
        if (state.rule.max_fires && state.fires >= state.rule.max_fires)
            continue;
        // The stream advances once per gate-passing hit, so the
        // decision is a pure function of (seed, site, hit index).
        bool fire = state.rng.chance(state.rule.probability);
        if (!fire)
            continue;
        ++state.fires;
        fired_.push_back({std::string(site), hit, state.rule.kind});
        FaultDecision decision;
        decision.kind = state.rule.kind;
        decision.stall_ms = state.rule.stall_ms;
        return decision;
    }
    return FaultDecision{};
}

std::vector<FiredFault>
FaultInjector::firedLog() const
{
    MutexLock lock(mutex_);
    return fired_;
}

std::uint64_t
FaultInjector::firedCount() const
{
    MutexLock lock(mutex_);
    return fired_.size();
}

} // namespace thermctl::fault
