#include "check/invariants.hh"

#include <cmath>

#include "common/logging.hh"

namespace thermctl
{

namespace check
{

void
verifyFinite(const TemperatureVector &temps, const char *where)
{
    // Blocks are reported by index: check sits below power/, which owns
    // the structure-name table.
    for (StructureId id : kAllStructures) {
        const double t = temps[id].value();
        if (!std::isfinite(t)) {
            panic("invariant [finite]: non-finite temperature ", t,
                  " for block #", static_cast<int>(id), " in ", where);
        }
    }
}

void
verifyFinite(const PowerVector &power, const char *where)
{
    for (StructureId id : kAllStructures) {
        const double p = power[id];
        if (!std::isfinite(p)) {
            panic("invariant [finite]: non-finite power ", p,
                  " for block #", static_cast<int>(id), " in ", where);
        }
    }
}

void
verifyFinite(double v, const char *what, const char *where)
{
    if (!std::isfinite(v)) {
        panic("invariant [finite]: non-finite ", what, " (", v, ") in ",
              where);
    }
}

void
verifyEulerStable(double dt_over_rc, double limit, const char *where,
                  const char *block)
{
    if (!(dt_over_rc > 0.0) || !(dt_over_rc < limit)) {
        panic("invariant [euler-stability]: dt/RC = ", dt_over_rc,
              " outside (0, ", limit, ") for block ", block, " in ",
              where, " — Eq. 5 forward Euler would diverge");
    }
}

void
verifyPidContract(double output, double integral_term, double out_min,
                  double out_max, bool integral_clamped, const char *where)
{
    if (!std::isfinite(output) || !std::isfinite(integral_term)) {
        panic("invariant [pid-contract]: non-finite controller state in ",
              where);
    }
    if (output < out_min || output > out_max) {
        panic("invariant [pid-contract]: output ", output,
              " escapes actuator range [", out_min, ", ", out_max,
              "] in ", where);
    }
    if (integral_clamped
        && (integral_term < out_min || integral_term > out_max)) {
        panic("invariant [pid-contract]: integral term ", integral_term,
              " escapes [", out_min, ", ", out_max,
              "] despite anti-windup clamp in ", where);
    }
}

void
EnergyAudit::verify(const char *where) const
{
    const double stored_delta = after_ - before_;
    const double net_in = input_ - loss_;
    const double scale = std::abs(before_) + std::abs(after_)
        + std::abs(input_) + std::abs(loss_) + 1.0;
    const double err = std::abs(stored_delta - net_in);
    if (!std::isfinite(err) || err > 1e-9 * scale) {
        panic("invariant [energy-balance]: stored delta ", stored_delta,
              " J != input - ambient loss ", net_in, " J (error ", err,
              " J, scale ", scale, ") in ", where);
    }
}

} // namespace check

} // namespace thermctl
