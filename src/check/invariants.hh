/**
 * @file
 * Physics-invariant checking layer ("thermctl-check").
 *
 * Two pieces:
 *
 *  1. Always-available verification primitives in namespace check:: —
 *     plain functions that panic() (throw PanicError) when a physical
 *     invariant is violated. Tests call these directly, so every
 *     invariant class is exercised even in builds that compile the
 *     instrumentation out.
 *
 *  2. The THERMCTL_INVARIANT() macro, which wraps calls to those
 *     primitives at hot call sites in thermal/, control/, dtm/ and sim/.
 *     It expands to nothing unless the build sets
 *     THERMCTL_INVARIANTS_ENABLED=1 (CMake option THERMCTL_INVARIANTS),
 *     so the default build pays zero overhead — no call, no branch.
 *
 * Invariant classes covered (see DESIGN.md, "Correctness tooling"):
 *  - finiteness: temperature/power state must never go NaN/Inf;
 *  - forward-Euler stability: dt/RC ratios must stay below the
 *    divergence bound of the paper's Eq. 5 integrator;
 *  - energy balance: a FullRCModel span must conserve energy
 *    (stored delta = input - ambient loss) to rounding error;
 *  - PID contract: output clamped to [out_min, out_max], integral term
 *    clamped / conditionally frozen per the paper's Section 3.3.
 */

#ifndef THERMCTL_CHECK_INVARIANTS_HH
#define THERMCTL_CHECK_INVARIANTS_HH

#include "common/types.hh"
#include "power/structures.hh"
#include "thermal/rc_model.hh"

#ifndef THERMCTL_INVARIANTS_ENABLED
#define THERMCTL_INVARIANTS_ENABLED 0
#endif

/**
 * Invoke a check::verify* call when invariant checking is compiled in;
 * expand to nothing otherwise.
 */
#if THERMCTL_INVARIANTS_ENABLED
#define THERMCTL_INVARIANT(...) __VA_ARGS__
#else
#define THERMCTL_INVARIANT(...) ((void)0)
#endif

namespace thermctl
{

namespace check
{

/** @return true when invariant instrumentation is compiled in. */
constexpr bool
instrumentationEnabled()
{
    return THERMCTL_INVARIANTS_ENABLED != 0;
}

/** Panic unless every block temperature is finite. */
void verifyFinite(const TemperatureVector &temps, const char *where);

/** Panic unless every block power is finite. */
void verifyFinite(const PowerVector &power, const char *where);

/** Panic unless the named scalar is finite. */
void verifyFinite(double v, const char *what, const char *where);

/**
 * Forward-Euler stability guard: panic unless 0 < dt/RC < limit.
 *
 * Eq. 5 diverges for dt/RC >= 2 and oscillates for dt/RC >= 1; models
 * pass the bound they can tolerate (SimplifiedRCModel uses 1).
 */
void verifyEulerStable(double dt_over_rc, double limit, const char *where,
                       const char *block);

/**
 * PID output/anti-windup contract (paper Section 3.3): the clamped
 * output must lie in [out_min, out_max] and be finite; when the
 * conditional anti-windup is active, the integral term alone must also
 * stay within the actuator range.
 */
void verifyPidContract(double output, double integral_term, double out_min,
                       double out_max, bool integral_clamped,
                       const char *where);

/**
 * Energy-balance audit for a FullRCModel span: forward Euler is exactly
 * conservative (per-step, with pre-step temperatures), so
 *
 *      E_stored_after - E_stored_before = E_input - E_ambient_loss
 *
 * must hold to rounding error. An asymmetric conductance matrix, a
 * missed tangential term, or a sign error all break the identity.
 */
class EnergyAudit
{
  public:
    /** Record heat injected by the power sources over a (sub)step. */
    void addInput(Joules e) { input_ += e.value(); }

    /** Record heat dissipated to ambient over a (sub)step. */
    void addAmbientLoss(Joules e) { loss_ += e.value(); }

    /** Record total stored energy (sum C_i * T_i) before the span. */
    void setStoredBefore(Joules e) { before_ = e.value(); }

    /** Record total stored energy after the span. */
    void setStoredAfter(Joules e) { after_ = e.value(); }

    /**
     * Panic unless the balance closes within a relative tolerance of
     * the energy scale involved.
     */
    void verify(const char *where) const;

  private:
    double input_ = 0.0;
    double loss_ = 0.0;
    double before_ = 0.0;
    double after_ = 0.0;
};

} // namespace check

} // namespace thermctl

#endif // THERMCTL_CHECK_INVARIANTS_HH
