/**
 * @file
 * The micro-operation format consumed by the out-of-order core.
 *
 * thermctl does not interpret a binary ISA: workloads are streams of
 * pre-decoded micro-ops (the moral equivalent of a SimpleScalar EIO trace)
 * carrying everything the timing, power and thermal models need — operation
 * class, register dependences, memory address, and branch outcome.
 */

#ifndef THERMCTL_ISA_MICRO_OP_HH
#define THERMCTL_ISA_MICRO_OP_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace thermctl
{

/** Operation classes, mirroring SimpleScalar's functional-unit classes. */
enum class OpClass : std::uint8_t
{
    IntAlu,     ///< single-cycle integer ALU op
    IntMult,    ///< pipelined integer multiply
    IntDiv,     ///< unpipelined integer divide
    FpAlu,      ///< FP add/sub/compare/convert
    FpMult,     ///< FP multiply
    FpDiv,      ///< unpipelined FP divide
    Load,       ///< memory read
    Store,      ///< memory write
    Branch,     ///< control transfer (conditional or not)
    Nop,        ///< no-op (consumes a slot only)
    NumOpClasses,
};

/** @return a short mnemonic for an op class ("ialu", "load", ...). */
const char *opClassName(OpClass cls);

/** @return true for Load or Store. */
constexpr bool
isMemOp(OpClass cls)
{
    return cls == OpClass::Load || cls == OpClass::Store;
}

/** @return true for any class executed on the FP unit. */
constexpr bool
isFpOp(OpClass cls)
{
    return cls == OpClass::FpAlu || cls == OpClass::FpMult
        || cls == OpClass::FpDiv;
}

/**
 * Architectural register file shape: 32 integer + 32 floating-point
 * registers, as in the Alpha ISA the paper simulates.
 */
inline constexpr RegId kNumIntArchRegs = 32;
inline constexpr RegId kNumFpArchRegs = 32;
inline constexpr RegId kNumArchRegs = kNumIntArchRegs + kNumFpArchRegs;

/** First FP architectural register id (FP regs follow the int regs). */
inline constexpr RegId kFirstFpReg = kNumIntArchRegs;

/**
 * A single pre-decoded micro-operation.
 *
 * Branch fields carry the *oracle* direction/target from the workload
 * generator; the core's branch predictor produces its own prediction and
 * mispeculates when they disagree, exactly as a trace-driven SimpleScalar
 * run would.
 */
struct MicroOp
{
    Addr pc = 0;                     ///< instruction address
    OpClass op = OpClass::Nop;       ///< functional class

    std::uint8_t num_srcs = 0;       ///< valid entries in srcs[]
    std::array<RegId, 2> srcs{kNoReg, kNoReg}; ///< source arch registers
    RegId dest = kNoReg;             ///< destination arch register (or none)

    Addr mem_addr = 0;               ///< effective address (mem ops)
    std::uint8_t mem_size = 8;       ///< access size in bytes (mem ops)

    bool is_branch = false;          ///< convenience mirror of op == Branch
    bool is_conditional = false;     ///< conditional branch?
    bool is_call = false;            ///< call (pushes return address)
    bool is_return = false;          ///< return (pops return address)
    bool taken = false;              ///< oracle direction
    Addr target = 0;                 ///< oracle target when taken

    /** @return the fall-through address (fixed 4-byte encoding). */
    Addr nextPc() const { return pc + 4; }

    /** @return where control actually goes after this op. */
    Addr
    actualNextPc() const
    {
        return (is_branch && taken) ? target : nextPc();
    }

    /** @return true when this op writes an architectural register. */
    bool hasDest() const { return dest != kNoReg; }

    /** Render a compact human-readable description (for debugging). */
    std::string toString() const;
};

} // namespace thermctl

#endif // THERMCTL_ISA_MICRO_OP_HH
