#include "isa/micro_op.hh"

#include <sstream>

namespace thermctl
{

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return "ialu";
      case OpClass::IntMult: return "imult";
      case OpClass::IntDiv: return "idiv";
      case OpClass::FpAlu: return "falu";
      case OpClass::FpMult: return "fmult";
      case OpClass::FpDiv: return "fdiv";
      case OpClass::Load: return "load";
      case OpClass::Store: return "store";
      case OpClass::Branch: return "branch";
      case OpClass::Nop: return "nop";
      default: return "?";
    }
}

std::string
MicroOp::toString() const
{
    std::ostringstream os;
    os << std::hex << "0x" << pc << std::dec << ' ' << opClassName(op);
    if (hasDest())
        os << " r" << dest << " <-";
    for (std::uint8_t i = 0; i < num_srcs; ++i)
        os << " r" << srcs[i];
    if (isMemOp(op))
        os << " [0x" << std::hex << mem_addr << std::dec << ']';
    if (is_branch) {
        os << (taken ? " T" : " N");
        if (taken)
            os << " ->0x" << std::hex << target << std::dec;
    }
    return os.str();
}

} // namespace thermctl
