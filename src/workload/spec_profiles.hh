/**
 * @file
 * The 18 named workload profiles standing in for the paper's SPEC CPU2000
 * benchmark selection (paper Tables 4 and 5).
 *
 * The profiles are tuned so the set spans the paper's four categories of
 * thermal behaviour:
 *  - extreme: actually enters thermal emergency without DTM
 *    (gcc, equake, fma3d, perlbmk, crafty, apsi, bzip2, and the bursty art);
 *  - high: long stretches within 1 degree of emergency but essentially no
 *    emergencies (mesa, facerec, eon, vortex — the paper singles these out
 *    as spending up to 98% of cycles above the stress level);
 *  - medium: some thermal stress (parser, twolf, gap);
 *  - low: never near thermal stress (gzip, wupwise, vpr).
 */

#ifndef THERMCTL_WORKLOAD_SPEC_PROFILES_HH
#define THERMCTL_WORKLOAD_SPEC_PROFILES_HH

#include <string>
#include <vector>

#include "workload/profile.hh"

namespace thermctl
{

/** @return all 18 benchmark profiles in the paper's Table 4 order. */
std::vector<WorkloadProfile> allSpecProfiles();

/** @return the profile with the given name; fatal() if unknown. */
WorkloadProfile specProfile(const std::string &name);

/** @return the names of all 18 profiles in Table 4 order. */
std::vector<std::string> specProfileNames();

} // namespace thermctl

#endif // THERMCTL_WORKLOAD_SPEC_PROFILES_HH
