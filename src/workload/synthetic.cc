#include "workload/synthetic.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace thermctl
{

namespace
{

/** Base virtual addresses for the synthetic address-space layout. */
constexpr Addr kCodeBase = 0x0040'0000;
constexpr Addr kHotBase = 0x1000'0000;
constexpr Addr kWarmBase = 0x2000'0000;
constexpr Addr kColdBase = 0x4000'0000;

/** Non-branch op classes, in the order used by the weight vector. */
constexpr OpClass kBodyClasses[] = {
    OpClass::IntAlu, OpClass::IntMult, OpClass::IntDiv,
    OpClass::FpAlu, OpClass::FpMult, OpClass::FpDiv,
    OpClass::Load, OpClass::Store,
};

} // namespace

double
InstructionMix::total() const
{
    return int_alu + int_mult + int_div + fp_alu + fp_mult + fp_div
        + load + store + branch;
}

SyntheticWorkload::SyntheticWorkload(WorkloadProfile profile)
    : profile_(std::move(profile)),
      rng_(Rng(profile_.seed).fork(0xc0ffee)),
      wrong_rng_(Rng(profile_.seed).fork(0xbad'bad)),
      recent_int_(kDestRing, kNoReg),
      recent_fp_(kDestRing, kNoReg)
{
    if (profile_.num_blocks == 0)
        fatal("WorkloadProfile '", profile_.name, "': num_blocks must be > 0");
    if (profile_.mean_block_len < 2.0)
        fatal("WorkloadProfile '", profile_.name,
              "': mean_block_len must be >= 2");
    if (profile_.dep_p <= 0.0 || profile_.dep_p > 1.0)
        fatal("WorkloadProfile '", profile_.name,
              "': dep_p must be in (0, 1]");
    if (profile_.hot_bytes < 64 || profile_.warm_bytes < 64
        || profile_.cold_bytes < 64) {
        fatal("WorkloadProfile '", profile_.name,
              "': region footprints must be at least one cache block");
    }
    buildProgram();
    recomputePhaseParams();
}

void
SyntheticWorkload::buildProgram()
{
    // ------------------------------------------------------------ functions
    const std::uint32_t num_funcs = 8;
    functions_.resize(num_funcs);

    // ------------------------------------------------------------ blocks
    blocks_.resize(profile_.num_blocks);
    const double branch_kind_weights_total =
        profile_.frac_loop_branches + profile_.frac_biased_branches
        + profile_.frac_patterned_branches + profile_.frac_random_branches;
    if (branch_kind_weights_total <= 0.0)
        fatal("WorkloadProfile '", profile_.name,
              "': branch-kind fractions must not all be zero");
    std::vector<double> kind_weights = {
        profile_.frac_loop_branches,
        profile_.frac_biased_branches,
        profile_.frac_patterned_branches,
        profile_.frac_random_branches,
    };

    Addr pc = kCodeBase;
    for (std::uint32_t i = 0; i < blocks_.size(); ++i) {
        Block &blk = blocks_[i];
        blk.base_pc = pc;
        // Block length: 2..(2*mean - 2), clamped into [2, 16].
        const double spread = std::max(1.0, profile_.mean_block_len - 2.0);
        auto len = static_cast<std::int64_t>(
            std::lround(profile_.mean_block_len
                        + rng_.uniform(-spread, spread)));
        blk.len = static_cast<std::uint8_t>(std::clamp<std::int64_t>(
            len, 2, 16));
        pc += static_cast<Addr>(blk.len) * 4;

        blk.ends_in_call = rng_.chance(profile_.call_prob);
        if (blk.ends_in_call) {
            blk.callee = static_cast<std::uint32_t>(rng_.below(num_funcs));
            continue;
        }

        StaticBranch &br = blk.branch;
        switch (rng_.weighted(kind_weights)) {
          case 0:
            br.kind = BranchKind::LoopBack;
            br.trip_count = 2 + static_cast<std::uint32_t>(
                rng_.geometric(1.0 / std::max(2.0,
                                              profile_.mean_trip_count)));
            // Tight backward loop over the last few blocks.
            br.taken_block = i >= 1
                ? i - 1 - static_cast<std::uint32_t>(
                      rng_.below(std::min<std::uint64_t>(3, i)))
                : 0;
            break;
          case 1:
            br.kind = BranchKind::Biased;
            br.taken_prob = rng_.chance(0.5) ? 0.92 : 0.08;
            br.taken_block =
                (i + 2 + static_cast<std::uint32_t>(rng_.below(4)))
                % static_cast<std::uint32_t>(blocks_.size());
            break;
          case 2:
            br.kind = BranchKind::Patterned;
            br.pattern_len = static_cast<std::uint8_t>(3 + rng_.below(6));
            br.pattern = static_cast<std::uint32_t>(
                rng_.below(1u << br.pattern_len));
            br.taken_block =
                (i + 2 + static_cast<std::uint32_t>(rng_.below(4)))
                % static_cast<std::uint32_t>(blocks_.size());
            break;
          default:
            br.kind = BranchKind::Random;
            br.taken_prob = 0.5;
            br.taken_block =
                (i + 2 + static_cast<std::uint32_t>(rng_.below(4)))
                % static_cast<std::uint32_t>(blocks_.size());
            break;
        }
    }

    // The last block must transfer control back to block 0 explicitly:
    // a fall-through off the end of the code region would break PC
    // continuity for the fetch engine.
    Block &last = blocks_.back();
    last.ends_in_call = false;
    last.branch = StaticBranch{};
    last.branch.kind = BranchKind::Biased;
    last.branch.taken_prob = 1.0;
    last.branch.taken_block = 0;

    // Function bodies follow the main code region.
    for (auto &fn : functions_) {
        fn.base_pc = pc;
        fn.len = static_cast<std::uint8_t>(3 + rng_.below(6));
        pc += static_cast<Addr>(fn.len) * 4;
    }
}

void
SyntheticWorkload::recomputePhaseParams()
{
    const WorkloadPhase *phase = nullptr;
    if (!profile_.phases.empty()) {
        phase = &profile_.phases[phase_index_];
        phase_insts_left_ = phase->length_insts;
    }

    const double fp_scale = phase ? phase->fp_scale : 1.0;
    const double mem_scale = phase ? phase->mem_scale : 1.0;

    eff_.op_weights = {
        profile_.mix.int_alu,
        profile_.mix.int_mult,
        profile_.mix.int_div,
        profile_.mix.fp_alu * fp_scale,
        profile_.mix.fp_mult * fp_scale,
        profile_.mix.fp_div * fp_scale,
        profile_.mix.load * mem_scale,
        profile_.mix.store * mem_scale,
    };
    bool any = false;
    for (double w : eff_.op_weights)
        any = any || w > 0.0;
    if (!any)
        fatal("WorkloadProfile '", profile_.name,
              "': instruction mix has no non-branch weight");

    eff_.cold_frac = profile_.cold_frac;
    eff_.warm_frac = profile_.warm_frac;
    eff_.dep_p = profile_.dep_p;
    if (phase) {
        if (phase->cold_frac_override >= 0.0)
            eff_.cold_frac = phase->cold_frac_override;
        if (phase->dep_p_override > 0.0)
            eff_.dep_p = phase->dep_p_override;
    }
}

void
SyntheticWorkload::advancePhaseAccounting()
{
    ++generated_;
    if (profile_.phases.empty())
        return;
    if (phase_insts_left_ > 0)
        --phase_insts_left_;
    if (phase_insts_left_ == 0) {
        phase_index_ = (phase_index_ + 1) % profile_.phases.size();
        recomputePhaseParams();
    }
}

OpClass
SyntheticWorkload::sampleOpClass()
{
    return kBodyClasses[rng_.weighted(eff_.op_weights)];
}

void
SyntheticWorkload::pushDest(RegId reg, bool fp)
{
    if (fp) {
        recent_fp_[fp_head_] = reg;
        fp_head_ = (fp_head_ + 1) % kDestRing;
    } else {
        recent_int_[int_head_] = reg;
        int_head_ = (int_head_ + 1) % kDestRing;
    }
}

RegId
SyntheticWorkload::pickSrc(bool fp)
{
    const auto &ring = fp ? recent_fp_ : recent_int_;
    const std::size_t head = fp ? fp_head_ : int_head_;
    std::uint64_t dist = 1 + rng_.geometric(eff_.dep_p);
    dist = std::min<std::uint64_t>(dist, kDestRing - 1);
    RegId reg = ring[(head + kDestRing - dist) % kDestRing];
    if (reg == kNoReg) {
        // Stream warm-up: fall back to a fixed live-in register.
        reg = fp ? static_cast<RegId>(kFirstFpReg + 1) : RegId{1};
    }
    return reg;
}

RegId
SyntheticWorkload::allocDest(bool fp)
{
    if (fp) {
        RegId reg = static_cast<RegId>(kFirstFpReg + next_fp_dest_);
        next_fp_dest_ = next_fp_dest_ >= 30 ? RegId{2}
                                            : static_cast<RegId>(
                                                  next_fp_dest_ + 1);
        return reg;
    }
    RegId reg = next_int_dest_;
    next_int_dest_ = next_int_dest_ >= 30 ? RegId{2}
                                          : static_cast<RegId>(
                                                next_int_dest_ + 1);
    return reg;
}

Addr
SyntheticWorkload::genMemAddr()
{
    const double r = rng_.uniform();
    Addr base;
    std::uint64_t size;
    Addr *stride_pos;
    if (r < eff_.cold_frac) {
        base = kColdBase;
        size = profile_.cold_bytes;
        stride_pos = &cold_stride_pos_;
    } else if (r < eff_.cold_frac + eff_.warm_frac) {
        base = kWarmBase;
        size = profile_.warm_bytes;
        stride_pos = &warm_stride_pos_;
    } else {
        base = kHotBase;
        size = profile_.hot_bytes;
        stride_pos = &hot_stride_pos_;
    }

    Addr offset;
    if (rng_.chance(profile_.stride_frac)) {
        *stride_pos = (*stride_pos + 8) % size;
        offset = *stride_pos;
    } else {
        offset = rng_.below(size) & ~Addr{7};
    }
    return base + offset;
}

MicroOp
SyntheticWorkload::makeBodyOp(Addr pc)
{
    MicroOp op;
    op.pc = pc;
    op.op = sampleOpClass();
    const bool fp = isFpOp(op.op);

    switch (op.op) {
      case OpClass::Load: {
        op.srcs[0] = pickSrc(false);
        op.num_srcs = 1;
        // FP-heavy codes load FP data; integer codes mostly load pointers.
        const double fp_load_prob =
            (profile_.mix.fp_alu + profile_.mix.fp_mult) > 0.1 ? 0.3 : 0.05;
        op.dest = allocDest(rng_.chance(fp_load_prob));
        op.mem_addr = genMemAddr();
        pushDest(op.dest, op.dest >= kFirstFpReg);
        break;
      }
      case OpClass::Store:
        op.srcs[0] = pickSrc(false);       // address
        op.srcs[1] = pickSrc(fp);          // data
        op.num_srcs = 2;
        op.mem_addr = genMemAddr();
        break;
      default:
        op.srcs[0] = pickSrc(fp);
        op.num_srcs = 1;
        if (rng_.chance(profile_.second_src_prob)) {
            op.srcs[1] = pickSrc(fp);
            op.num_srcs = 2;
        }
        op.dest = allocDest(fp);
        pushDest(op.dest, fp);
        break;
    }
    return op;
}

MicroOp
SyntheticWorkload::makeTerminator()
{
    MicroOp op;
    op.op = OpClass::Branch;
    op.is_branch = true;

    if (in_function_) {
        // Function bodies end in a return to the caller's fall-through.
        const Function &fn = functions_[cur_func_];
        op.pc = fn.base_pc + static_cast<Addr>(fn.len - 1) * 4;
        op.is_return = true;
        op.taken = true;
        std::uint32_t resume = call_stack_.empty() ? 0 : call_stack_.back();
        if (!call_stack_.empty())
            call_stack_.pop_back();
        op.target = blocks_[resume].base_pc;
        in_function_ = false;
        cur_block_ = resume;
        cur_off_ = 0;
        return op;
    }

    Block &blk = blocks_[cur_block_];
    op.pc = blk.base_pc + static_cast<Addr>(blk.len - 1) * 4;

    if (blk.ends_in_call) {
        op.is_call = true;
        op.taken = true;
        op.target = functions_[blk.callee].base_pc;
        const std::uint32_t resume =
            (cur_block_ + 1) % static_cast<std::uint32_t>(blocks_.size());
        if (call_stack_.size() < 32)
            call_stack_.push_back(resume);
        in_function_ = true;
        cur_func_ = blk.callee;
        cur_off_ = 0;
        return op;
    }

    StaticBranch &br = blk.branch;
    op.is_conditional = true;
    op.srcs[0] = pickSrc(false);
    op.num_srcs = 1;

    bool taken = false;
    switch (br.kind) {
      case BranchKind::LoopBack:
        ++br.counter;
        taken = br.counter < br.trip_count;
        if (!taken)
            br.counter = 0;
        break;
      case BranchKind::Biased:
        taken = rng_.chance(br.taken_prob);
        break;
      case BranchKind::Patterned:
        taken = (br.pattern >> (br.counter % br.pattern_len)) & 1u;
        ++br.counter;
        break;
      case BranchKind::Random: {
        double p = br.taken_prob;
        if (!profile_.phases.empty()) {
            double ov = profile_.phases[phase_index_].random_branch_override;
            if (ov >= 0.0)
                p = ov;
        }
        taken = rng_.chance(p);
        break;
      }
    }

    op.taken = taken;
    op.target = blocks_[br.taken_block].base_pc;

    const std::uint32_t fallthrough =
        (cur_block_ + 1) % static_cast<std::uint32_t>(blocks_.size());
    cur_block_ = taken ? br.taken_block : fallthrough;
    cur_off_ = 0;
    return op;
}

MicroOp
SyntheticWorkload::next()
{
    MicroOp op;
    if (in_function_) {
        const Function &fn = functions_[cur_func_];
        if (cur_off_ + 1 >= fn.len) {
            op = makeTerminator();
        } else {
            op = makeBodyOp(fn.base_pc + static_cast<Addr>(cur_off_) * 4);
            ++cur_off_;
        }
    } else {
        const Block &blk = blocks_[cur_block_];
        if (cur_off_ + 1 >= blk.len) {
            op = makeTerminator();
        } else {
            op = makeBodyOp(blk.base_pc + static_cast<Addr>(cur_off_) * 4);
            ++cur_off_;
        }
    }
    advancePhaseAccounting();
    return op;
}

MicroOp
SyntheticWorkload::synthesizeAt(Addr pc)
{
    // Wrong-path ops: plausible mix, warm-region addresses, no control
    // transfers (a wrong-path branch would immediately redirect fetch again;
    // predictors treat unknown PCs as not-taken anyway).
    MicroOp op;
    op.pc = pc;
    op.op = kBodyClasses[wrong_rng_.weighted(eff_.op_weights)];
    const bool fp = isFpOp(op.op);
    // Wrong-path memory accesses mostly touch the same hot data the
    // correct path uses (the wrong path is nearby code), with occasional
    // warm-region pollution.
    auto wrong_addr = [&]() -> Addr {
        if (wrong_rng_.chance(0.15)) {
            return kWarmBase
                + (wrong_rng_.below(profile_.warm_bytes) & ~Addr{7});
        }
        return kHotBase
            + (wrong_rng_.below(profile_.hot_bytes) & ~Addr{7});
    };
    switch (op.op) {
      case OpClass::Load:
        op.srcs[0] = 1;
        op.num_srcs = 1;
        op.dest = 31;
        op.mem_addr = wrong_addr();
        break;
      case OpClass::Store:
        op.srcs[0] = 1;
        op.srcs[1] = 2;
        op.num_srcs = 2;
        op.mem_addr = wrong_addr();
        break;
      default:
        op.srcs[0] = fp ? static_cast<RegId>(kFirstFpReg + 1) : RegId{1};
        op.num_srcs = 1;
        op.dest = fp ? static_cast<RegId>(kFirstFpReg + 31) : RegId{31};
        break;
    }
    return op;
}

const char *
thermalCategoryName(ThermalCategory cat)
{
    switch (cat) {
      case ThermalCategory::Extreme: return "extreme";
      case ThermalCategory::High: return "high";
      case ThermalCategory::Medium: return "medium";
      case ThermalCategory::Low: return "low";
      default: return "?";
    }
}

} // namespace thermctl
