/**
 * @file
 * Abstract source of pre-decoded micro-ops for the core.
 *
 * Streams play the role of SimpleScalar EIO traces in the paper's
 * methodology: they supply the committed (correct) execution path, and the
 * core consults the stream again to synthesize plausible wrong-path ops
 * after a branch misprediction.
 */

#ifndef THERMCTL_WORKLOAD_INSTRUCTION_STREAM_HH
#define THERMCTL_WORKLOAD_INSTRUCTION_STREAM_HH

#include "isa/micro_op.hh"

namespace thermctl
{

/** Interface for correct-path micro-op sources. */
class InstructionStream
{
  public:
    virtual ~InstructionStream() = default;

    /**
     * Produce the next correct-path micro-op. Calling next() advances the
     * stream; the core buffers ops it has fetched but not yet committed.
     */
    virtual MicroOp next() = 0;

    /**
     * Synthesize a plausible wrong-path micro-op at the given PC. Wrong
     * path ops occupy pipeline resources and consume power until the
     * mispredicted branch resolves, but never commit.
     */
    virtual MicroOp synthesizeAt(Addr pc) = 0;

    /**
     * @return true when the stream is exhausted. Synthetic workloads are
     * infinite and always return false.
     */
    virtual bool done() const { return false; }
};

} // namespace thermctl

#endif // THERMCTL_WORKLOAD_INSTRUCTION_STREAM_HH
