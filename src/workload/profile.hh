/**
 * @file
 * Parameter set describing a synthetic benchmark.
 *
 * A WorkloadProfile captures the program characteristics that matter to the
 * paper's thermal study: instruction mix (which structures are exercised),
 * dependency distances (ILP, hence sustained activity), branch-pattern
 * predictability (fetch efficiency and bpred heating), memory footprints
 * (cache miss rates, hence stall behaviour and D-cache heating), code
 * footprint (I-cache behaviour), and phase structure (thermal burstiness).
 *
 * The 18 named profiles in spec_profiles.cc stand in for the paper's 18
 * SPEC CPU2000 benchmarks; see DESIGN.md §2 for the substitution argument.
 */

#ifndef THERMCTL_WORKLOAD_PROFILE_HH
#define THERMCTL_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace thermctl
{

/** Thermal-behaviour categories from paper Table 5. */
enum class ThermalCategory
{
    Extreme,  ///< spends time in actual thermal emergency
    High,     ///< long stretches within 1 degree of emergency
    Medium,   ///< some thermal stress, no emergencies
    Low,      ///< never near thermal stress
};

/** @return printable category name. */
const char *thermalCategoryName(ThermalCategory cat);

/** Behavioural classes for synthesized static branches. */
enum class BranchKind
{
    LoopBack,     ///< backward loop branch with a fixed trip count
    Biased,       ///< highly biased conditional (taken with prob ~0.9)
    Patterned,    ///< repeating short direction pattern (learnable)
    Random,       ///< coin-flip direction (bounds predictor accuracy)
};

/** Relative frequencies of instruction classes (normalized at use). */
struct InstructionMix
{
    double int_alu = 0.40;
    double int_mult = 0.01;
    double int_div = 0.002;
    double fp_alu = 0.05;
    double fp_mult = 0.02;
    double fp_div = 0.002;
    double load = 0.25;
    double store = 0.12;
    double branch = 0.15;

    /** @return the sum of all class weights. */
    double total() const;
};

/**
 * One execution phase. Phases repeat cyclically and scale selected
 * profile parameters, producing the temporal non-uniformity in power
 * density that the paper's Section 4.2 calls out (bursty programs such as
 * art vs. steady ones such as mesa).
 */
struct WorkloadPhase
{
    /** Committed instructions spent in this phase per visit. */
    std::uint64_t length_insts = 200000;

    /** Multiplier on FP-class weights during the phase. */
    double fp_scale = 1.0;

    /** Multiplier on memory-class weights during the phase. */
    double mem_scale = 1.0;

    /** Overrides the profile's cold-access probability when >= 0. */
    double cold_frac_override = -1.0;

    /** Overrides the profile's dependency-chain parameter when > 0. */
    double dep_p_override = 0.0;

    /** Overrides the random-branch fraction when >= 0. */
    double random_branch_override = -1.0;
};

/** Complete description of a synthetic benchmark. */
struct WorkloadProfile
{
    std::string name = "generic";
    ThermalCategory category = ThermalCategory::Medium;

    /** Base instruction mix (phases may scale parts of it). */
    InstructionMix mix;

    /**
     * Geometric parameter p in (0,1] for register dependency distance:
     * a source register depends on the (1 + Geom(p))-th most recent
     * producer. Large p -> short chains -> serialized, low ILP.
     * Small p -> long distances -> high ILP.
     */
    double dep_p = 0.35;

    /** Probability a micro-op has a second source operand. */
    double second_src_prob = 0.5;

    // ----------------------------------------------------------- branches
    /** Fraction of synthesized static branches of each kind. */
    double frac_loop_branches = 0.50;
    double frac_biased_branches = 0.30;
    double frac_patterned_branches = 0.10;
    double frac_random_branches = 0.10;

    /** Mean loop trip count for LoopBack branches (geometric). */
    double mean_trip_count = 12.0;

    /** Probability a basic block ends in a call (paired with return). */
    double call_prob = 0.02;

    // ------------------------------------------------------------- memory
    /**
     * Access-region probabilities. hot fits in L1D, warm in L2, cold in
     * main memory; they must sum to <= 1 (the remainder goes to hot).
     */
    double warm_frac = 0.06;
    double cold_frac = 0.01;

    /** Footprint of each region in bytes. */
    std::uint64_t hot_bytes = 32 * 1024;
    std::uint64_t warm_bytes = 1024 * 1024;
    std::uint64_t cold_bytes = 64ull * 1024 * 1024;

    /** Probability a memory access continues a sequential stride walk. */
    double stride_frac = 0.6;

    // --------------------------------------------------------------- code
    /**
     * Number of static basic blocks in the synthetic program. The basic
     * blocks are laid out contiguously; large values exceed the 64 KB
     * I-cache (16 K instructions) and produce I-fetch misses (gcc-like).
     */
    std::uint32_t num_blocks = 256;

    /** Mean basic-block length in micro-ops. */
    double mean_block_len = 7.0;

    // -------------------------------------------------------------- phases
    /** Cyclic phase schedule; empty means one uniform phase. */
    std::vector<WorkloadPhase> phases;

    /** Seed folded into the generator (per-benchmark stream separation). */
    std::uint64_t seed = 1;
};

} // namespace thermctl

#endif // THERMCTL_WORKLOAD_PROFILE_HH
