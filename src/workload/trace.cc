#include "workload/trace.hh"

#include <cstring>
#include <iterator>

#include "common/logging.hh"

namespace thermctl
{

namespace
{

/** On-disk fixed-size record; explicitly packed field by field. */
struct TraceRecord
{
    std::uint64_t pc;
    std::uint64_t mem_addr;
    std::uint64_t target;
    std::uint16_t src0;
    std::uint16_t src1;
    std::uint16_t dest;
    std::uint8_t op;
    std::uint8_t num_srcs;
    std::uint8_t mem_size;
    std::uint8_t flags;
    std::uint8_t pad[2];
};
static_assert(sizeof(TraceRecord) == 36 || sizeof(TraceRecord) == 40,
              "TraceRecord layout unexpectedly changed");

constexpr std::uint8_t kFlagBranch = 1 << 0;
constexpr std::uint8_t kFlagConditional = 1 << 1;
constexpr std::uint8_t kFlagCall = 1 << 2;
constexpr std::uint8_t kFlagReturn = 1 << 3;
constexpr std::uint8_t kFlagTaken = 1 << 4;

TraceRecord
pack(const MicroOp &op)
{
    TraceRecord rec{};
    rec.pc = op.pc;
    rec.mem_addr = op.mem_addr;
    rec.target = op.target;
    rec.src0 = op.srcs[0];
    rec.src1 = op.srcs[1];
    rec.dest = op.dest;
    rec.op = static_cast<std::uint8_t>(op.op);
    rec.num_srcs = op.num_srcs;
    rec.mem_size = op.mem_size;
    rec.flags = 0;
    if (op.is_branch)
        rec.flags |= kFlagBranch;
    if (op.is_conditional)
        rec.flags |= kFlagConditional;
    if (op.is_call)
        rec.flags |= kFlagCall;
    if (op.is_return)
        rec.flags |= kFlagReturn;
    if (op.taken)
        rec.flags |= kFlagTaken;
    return rec;
}

MicroOp
unpack(const TraceRecord &rec)
{
    MicroOp op;
    op.pc = rec.pc;
    op.mem_addr = rec.mem_addr;
    op.target = rec.target;
    op.srcs[0] = rec.src0;
    op.srcs[1] = rec.src1;
    op.dest = rec.dest;
    op.op = static_cast<OpClass>(rec.op);
    op.num_srcs = rec.num_srcs;
    op.mem_size = rec.mem_size;
    op.is_branch = rec.flags & kFlagBranch;
    op.is_conditional = rec.flags & kFlagConditional;
    op.is_call = rec.flags & kFlagCall;
    op.is_return = rec.flags & kFlagReturn;
    op.taken = rec.flags & kFlagTaken;
    return op;
}

struct TraceHeader
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint64_t count;
};

} // namespace

bool
decodeTrace(std::string_view data, std::vector<MicroOp> &ops,
            std::string &error)
{
    ops.clear();
    if (data.size() < sizeof(TraceHeader)) {
        error = "shorter than a trace header";
        return false;
    }
    TraceHeader hdr{};
    std::memcpy(&hdr, data.data(), sizeof(hdr));
    if (hdr.magic != kTraceMagic) {
        error = "bad magic (not a thermctl trace)";
        return false;
    }
    if (hdr.version != kTraceVersion) {
        error = "unsupported trace version " + std::to_string(hdr.version);
        return false;
    }
    // The byte count is ground truth; the header count merely claims.
    // Checking count against it before reserving blocks the classic
    // header bomb: a 16-byte file declaring 2^60 records.
    const std::size_t body = data.size() - sizeof(TraceHeader);
    if (body % sizeof(TraceRecord) != 0) {
        error = "truncated or trailing bytes after the last record";
        return false;
    }
    if (hdr.count != body / sizeof(TraceRecord)) {
        error = "record count " + std::to_string(hdr.count)
                + " disagrees with file size ("
                + std::to_string(body / sizeof(TraceRecord))
                + " records present)";
        return false;
    }
    if (hdr.count == 0) {
        error = "empty trace";
        return false;
    }
    ops.reserve(hdr.count);
    const char *p = data.data() + sizeof(TraceHeader);
    for (std::uint64_t i = 0; i < hdr.count; ++i) {
        TraceRecord rec{};
        std::memcpy(&rec, p + i * sizeof(TraceRecord), sizeof(rec));
        if (rec.op >= static_cast<std::uint8_t>(OpClass::NumOpClasses)) {
            error = "record " + std::to_string(i)
                    + " carries invalid op class "
                    + std::to_string(rec.op);
            ops.clear();
            return false;
        }
        ops.push_back(unpack(rec));
    }
    return true;
}

// ----------------------------------------------------------------- writer

TraceWriter::TraceWriter(const std::string &path)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path)
{
    if (!out_)
        fatal("cannot open trace file for writing: ", path);
    TraceHeader hdr{kTraceMagic, kTraceVersion, 0};
    out_.write(reinterpret_cast<const char *>(&hdr), sizeof(hdr));
}

TraceWriter::~TraceWriter()
{
    if (!closed_) {
        try {
            close();
        } catch (...) {
            // Destructors must not throw; the file may be truncated.
        }
    }
}

void
TraceWriter::append(const MicroOp &op)
{
    if (closed_)
        panic("TraceWriter::append after close");
    TraceRecord rec = pack(op);
    out_.write(reinterpret_cast<const char *>(&rec), sizeof(rec));
    ++count_;
}

void
TraceWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    TraceHeader hdr{kTraceMagic, kTraceVersion, count_};
    out_.seekp(0);
    out_.write(reinterpret_cast<const char *>(&hdr), sizeof(hdr));
    out_.flush();
    if (!out_)
        fatal("I/O error finalizing trace file: ", path_);
    out_.close();
}

// ----------------------------------------------------------------- reader

TraceReader::TraceReader(const std::string &path, bool loop)
    : loop_(loop), wrong_rng_(0x77707274)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open trace file for reading: ", path);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (in.bad())
        fatal("I/O error reading trace file: ", path);
    std::string error;
    if (!decodeTrace(data, ops_, error))
        fatal("invalid trace file ", path, ": ", error);
}

MicroOp
TraceReader::next()
{
    if (wrap_jump_pending_) {
        wrap_jump_pending_ = false;
        return wrap_jump_;
    }
    if (done())
        panic("TraceReader::next past end of trace");
    MicroOp op = ops_[pos_++];
    if (loop_ && pos_ == ops_.size()) {
        pos_ = 0;
        // Stitch the wrap with a synthetic jump when the last op does
        // not naturally flow into the first.
        if (op.actualNextPc() != ops_.front().pc) {
            wrap_jump_ = MicroOp{};
            wrap_jump_.pc = op.actualNextPc();
            wrap_jump_.op = OpClass::Branch;
            wrap_jump_.is_branch = true;
            wrap_jump_.taken = true;
            wrap_jump_.target = ops_.front().pc;
            wrap_jump_pending_ = true;
        }
    }
    return op;
}

bool
TraceReader::done() const
{
    return !loop_ && pos_ >= ops_.size();
}

MicroOp
TraceReader::synthesizeAt(Addr pc)
{
    // Reuse a random committed op's class/payload, re-addressed to pc.
    MicroOp op = ops_[wrong_rng_.below(ops_.size())];
    op.pc = pc;
    op.is_branch = false;
    op.is_conditional = false;
    op.is_call = false;
    op.is_return = false;
    op.taken = false;
    if (op.op == OpClass::Branch)
        op.op = OpClass::IntAlu;
    return op;
}

} // namespace thermctl
