/**
 * @file
 * EIO-style binary micro-op traces.
 *
 * The paper uses SimpleScalar EIO traces "to ensure reproducible results
 * for each benchmark across multiple simulations". thermctl workloads are
 * already deterministic from their seed, but traces additionally allow
 * capturing a stream once and replaying it bit-identically (e.g., to share
 * a regression input or to replay a workload into a modified simulator).
 */

#ifndef THERMCTL_WORKLOAD_TRACE_HH
#define THERMCTL_WORKLOAD_TRACE_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.hh"
#include "workload/instruction_stream.hh"

namespace thermctl
{

/**
 * Decode an in-memory trace image (header + packed records) into
 * micro-ops.
 *
 * This is the validation core of TraceReader, split out so untrusted
 * bytes can be parsed without touching the filesystem (the fuzz
 * harness drives it directly). Never throws: on any defect — bad
 * magic/version, record count disagreeing with the byte count, an
 * out-of-range op class, an empty trace — it returns false and sets
 * `error` to a one-line diagnostic. The record count is validated
 * against the actual byte length *before* any allocation, so a hostile
 * count cannot force an oversized reserve.
 */
bool decodeTrace(std::string_view data, std::vector<MicroOp> &ops,
                 std::string &error);

/** Records micro-ops into a compact binary trace file. */
class TraceWriter
{
  public:
    /** Open the file and write the header; fatal() on I/O failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one micro-op. */
    void append(const MicroOp &op);

    /** Flush and finalize the header's record count. */
    void close();

    /** Number of records appended so far. */
    std::uint64_t count() const { return count_; }

  private:
    std::ofstream out_;
    std::string path_;
    std::uint64_t count_ = 0;
    bool closed_ = false;
};

/**
 * Replays a binary trace as an InstructionStream.
 *
 * When `loop` is true the stream restarts from the beginning upon reaching
 * the end (useful for driving long simulations from a short captured
 * trace); otherwise done() becomes true.
 */
class TraceReader : public InstructionStream
{
  public:
    explicit TraceReader(const std::string &path, bool loop = false);

    MicroOp next() override;
    MicroOp synthesizeAt(Addr pc) override;
    bool done() const override;

    /** Total records in the trace file. */
    std::uint64_t count() const { return ops_.size(); }

  private:
    std::vector<MicroOp> ops_;
    std::size_t pos_ = 0;
    bool loop_;
    Rng wrong_rng_;
    /**
     * Synthetic unconditional jump emitted at the wrap point so the
     * replayed stream keeps the PC continuity the fetch engine
     * requires (the capture is usually cut mid-basic-block).
     */
    MicroOp wrap_jump_{};
    bool wrap_jump_pending_ = false;
};

/** Trace file magic and version (bumped on any format change). */
inline constexpr std::uint32_t kTraceMagic = 0x54435452; // "TCTR"
inline constexpr std::uint32_t kTraceVersion = 1;

} // namespace thermctl

#endif // THERMCTL_WORKLOAD_TRACE_HH
