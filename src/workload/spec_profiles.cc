#include "workload/spec_profiles.hh"

#include "common/logging.hh"

namespace thermctl
{

namespace
{

/** Common scaffolding: name, category, deterministic per-benchmark seed. */
WorkloadProfile
base(const std::string &name, ThermalCategory cat, std::uint64_t seed)
{
    WorkloadProfile p;
    p.name = name;
    p.category = cat;
    p.seed = seed;
    return p;
}

// ----------------------------------------------------------------- extreme

/** gcc: integer, huge code footprint, high sustained activity. */
WorkloadProfile
makeGcc()
{
    auto p = base("176.gcc", ThermalCategory::Extreme, 176);
    p.mix = {.int_alu = 0.44, .int_mult = 0.01, .int_div = 0.001,
             .fp_alu = 0.01, .fp_mult = 0.0, .fp_div = 0.0,
             .load = 0.29, .store = 0.14, .branch = 0.15};
    p.dep_p = 0.13;
    p.frac_loop_branches = 0.45;
    p.frac_biased_branches = 0.38;
    p.frac_patterned_branches = 0.12;
    p.frac_random_branches = 0.05;
    p.num_blocks = 6000;           // ~170 KB of code: real I-cache misses
    p.hot_bytes = 24 * 1024;
    p.warm_frac = 0.03;
    p.cold_frac = 0.002;
    return p;
}

/** equake: FP with alternating compute / memory phases. */
WorkloadProfile
makeEquake()
{
    auto p = base("183.equake", ThermalCategory::Extreme, 183);
    p.mix = {.int_alu = 0.22, .int_mult = 0.005, .int_div = 0.0,
             .fp_alu = 0.26, .fp_mult = 0.12, .fp_div = 0.003,
             .load = 0.27, .store = 0.08, .branch = 0.10};
    p.dep_p = 0.20;
    p.mean_block_len = 9.0;
    p.frac_loop_branches = 0.70;
    p.frac_biased_branches = 0.20;
    p.frac_patterned_branches = 0.05;
    p.frac_random_branches = 0.05;
    p.phases = {
        {.length_insts = 250000, .fp_scale = 1.8, .mem_scale = 0.8,
         .cold_frac_override = 0.001, .dep_p_override = 0.14},
        {.length_insts = 150000, .fp_scale = 0.7, .mem_scale = 1.4,
         .cold_frac_override = 0.03, .dep_p_override = 0.35},
    };
    return p;
}

/** fma3d: dense FP, long dependence-free runs -> hottest FP unit. */
WorkloadProfile
makeFma3d()
{
    auto p = base("191.fma3d", ThermalCategory::Extreme, 191);
    p.mix = {.int_alu = 0.18, .int_mult = 0.0, .int_div = 0.0,
             .fp_alu = 0.30, .fp_mult = 0.18, .fp_div = 0.004,
             .load = 0.22, .store = 0.10, .branch = 0.10};
    p.dep_p = 0.16;
    p.mean_block_len = 10.0;
    p.frac_loop_branches = 0.80;
    p.frac_biased_branches = 0.15;
    p.frac_patterned_branches = 0.03;
    p.frac_random_branches = 0.02;
    p.mean_trip_count = 32.0;
    p.hot_bytes = 28 * 1024;
    p.warm_frac = 0.04;
    p.cold_frac = 0.002;
    return p;
}

/** perlbmk: branchy integer interpreter with frequent calls. */
WorkloadProfile
makePerlbmk()
{
    auto p = base("253.perlbmk", ThermalCategory::Extreme, 253);
    p.mix = {.int_alu = 0.46, .int_mult = 0.005, .int_div = 0.001,
             .fp_alu = 0.005, .fp_mult = 0.0, .fp_div = 0.0,
             .load = 0.28, .store = 0.12, .branch = 0.18};
    p.dep_p = 0.15;
    p.mean_block_len = 4.5;       // branch every ~4.5 ops -> hot bpred
    p.call_prob = 0.08;
    p.frac_loop_branches = 0.34;
    p.frac_biased_branches = 0.45;
    p.frac_patterned_branches = 0.15;
    p.frac_random_branches = 0.06;
    p.num_blocks = 2048;
    p.hot_bytes = 20 * 1024;
    p.warm_frac = 0.03;
    p.cold_frac = 0.002;
    return p;
}

/** crafty: chess; very high-ILP integer with small, L1-resident data. */
WorkloadProfile
makeCrafty()
{
    auto p = base("186.crafty", ThermalCategory::Extreme, 186);
    p.mix = {.int_alu = 0.52, .int_mult = 0.01, .int_div = 0.0,
             .fp_alu = 0.0, .fp_mult = 0.0, .fp_div = 0.0,
             .load = 0.24, .store = 0.08, .branch = 0.15};
    p.dep_p = 0.14;
    p.mean_block_len = 6.0;
    p.frac_loop_branches = 0.40;
    p.frac_biased_branches = 0.35;
    p.frac_patterned_branches = 0.15;
    p.frac_random_branches = 0.10;
    p.hot_bytes = 16 * 1024;
    p.warm_frac = 0.02;
    p.cold_frac = 0.001;
    return p;
}

/** apsi: FP weather code; mixed FP/memory, steady and hot. */
WorkloadProfile
makeApsi()
{
    auto p = base("301.apsi", ThermalCategory::Extreme, 301);
    p.mix = {.int_alu = 0.24, .int_mult = 0.005, .int_div = 0.0,
             .fp_alu = 0.25, .fp_mult = 0.13, .fp_div = 0.005,
             .load = 0.23, .store = 0.09, .branch = 0.10};
    p.dep_p = 0.18;
    p.mean_block_len = 9.0;
    p.frac_loop_branches = 0.75;
    p.frac_biased_branches = 0.18;
    p.frac_patterned_branches = 0.04;
    p.frac_random_branches = 0.03;
    p.warm_frac = 0.05;
    p.cold_frac = 0.006;
    return p;
}

/**
 * art: the paper's canonical bursty program — short intense FP bursts
 * separated by long memory-bound stretches, so it spends little total time
 * above the stress level but a large fraction of that time in emergency.
 */
WorkloadProfile
makeArt()
{
    auto p = base("179.art", ThermalCategory::Extreme, 179);
    p.mix = {.int_alu = 0.20, .int_mult = 0.0, .int_div = 0.0,
             .fp_alu = 0.28, .fp_mult = 0.14, .fp_div = 0.002,
             .load = 0.26, .store = 0.06, .branch = 0.10};
    p.dep_p = 0.25;
    p.mean_block_len = 9.0;
    p.frac_loop_branches = 0.80;
    p.frac_biased_branches = 0.15;
    p.frac_patterned_branches = 0.03;
    p.frac_random_branches = 0.02;
    p.phases = {
        {.length_insts = 250000, .fp_scale = 1.8, .mem_scale = 0.7,
         .cold_frac_override = 0.0005, .dep_p_override = 0.13},
        {.length_insts = 250000, .fp_scale = 0.5, .mem_scale = 1.5,
         .cold_frac_override = 0.05, .dep_p_override = 0.60},
    };
    return p;
}

/** bzip2: integer compression, load/store heavy, L2-resident data. */
WorkloadProfile
makeBzip2()
{
    auto p = base("256.bzip2", ThermalCategory::Extreme, 256);
    p.mix = {.int_alu = 0.44, .int_mult = 0.005, .int_div = 0.0,
             .fp_alu = 0.0, .fp_mult = 0.0, .fp_div = 0.0,
             .load = 0.30, .store = 0.14, .branch = 0.12};
    p.dep_p = 0.14;
    p.mean_block_len = 8.0;
    p.frac_loop_branches = 0.55;
    p.frac_biased_branches = 0.30;
    p.frac_patterned_branches = 0.10;
    p.frac_random_branches = 0.05;
    p.warm_frac = 0.04;
    p.cold_frac = 0.002;
    return p;
}

// -------------------------------------------------------------------- high

/** mesa: steady FP rendering; sits just below emergency for most cycles. */
WorkloadProfile
makeMesa()
{
    auto p = base("177.mesa", ThermalCategory::High, 177);
    p.mix = {.int_alu = 0.30, .int_mult = 0.005, .int_div = 0.0,
             .fp_alu = 0.20, .fp_mult = 0.09, .fp_div = 0.003,
             .load = 0.24, .store = 0.09, .branch = 0.12};
    p.dep_p = 0.21;
    p.mean_block_len = 8.0;
    p.frac_loop_branches = 0.60;
    p.frac_biased_branches = 0.28;
    p.frac_patterned_branches = 0.07;
    p.frac_random_branches = 0.05;
    p.hot_bytes = 24 * 1024;
    p.warm_frac = 0.04;
    p.cold_frac = 0.003;
    return p;
}

/** facerec: steady FP image processing, similar to mesa. */
WorkloadProfile
makeFacerec()
{
    auto p = base("187.facerec", ThermalCategory::High, 187);
    p.mix = {.int_alu = 0.26, .int_mult = 0.005, .int_div = 0.0,
             .fp_alu = 0.22, .fp_mult = 0.10, .fp_div = 0.002,
             .load = 0.25, .store = 0.08, .branch = 0.10};
    p.dep_p = 0.22;
    p.mean_block_len = 9.0;
    p.frac_loop_branches = 0.72;
    p.frac_biased_branches = 0.20;
    p.frac_patterned_branches = 0.05;
    p.frac_random_branches = 0.03;
    p.warm_frac = 0.05;
    p.cold_frac = 0.004;
    return p;
}

/** eon: C++ ray tracer; call-heavy mixed int/FP. */
WorkloadProfile
makeEon()
{
    auto p = base("252.eon", ThermalCategory::High, 252);
    p.mix = {.int_alu = 0.36, .int_mult = 0.01, .int_div = 0.001,
             .fp_alu = 0.14, .fp_mult = 0.06, .fp_div = 0.004,
             .load = 0.26, .store = 0.10, .branch = 0.13};
    p.dep_p = 0.22;
    p.mean_block_len = 6.0;
    p.call_prob = 0.08;
    p.frac_loop_branches = 0.35;
    p.frac_biased_branches = 0.45;
    p.frac_patterned_branches = 0.12;
    p.frac_random_branches = 0.08;
    p.hot_bytes = 20 * 1024;
    p.warm_frac = 0.04;
    p.cold_frac = 0.002;
    return p;
}

/** vortex: integer OO database; load/store heavy, warm working set. */
WorkloadProfile
makeVortex()
{
    auto p = base("255.vortex", ThermalCategory::High, 255);
    p.mix = {.int_alu = 0.40, .int_mult = 0.005, .int_div = 0.0,
             .fp_alu = 0.0, .fp_mult = 0.0, .fp_div = 0.0,
             .load = 0.30, .store = 0.15, .branch = 0.14};
    p.dep_p = 0.20;
    p.mean_block_len = 7.0;
    p.call_prob = 0.04;
    p.frac_loop_branches = 0.35;
    p.frac_biased_branches = 0.45;
    p.frac_patterned_branches = 0.10;
    p.frac_random_branches = 0.10;
    p.num_blocks = 3000;
    p.warm_frac = 0.09;
    p.cold_frac = 0.004;
    return p;
}

// ------------------------------------------------------------------ medium

/** parser: integer with hard-to-predict branches; persistently stressed. */
WorkloadProfile
makeParser()
{
    auto p = base("197.parser", ThermalCategory::High, 197);
    p.mix = {.int_alu = 0.42, .int_mult = 0.005, .int_div = 0.001,
             .fp_alu = 0.0, .fp_mult = 0.0, .fp_div = 0.0,
             .load = 0.28, .store = 0.11, .branch = 0.17};
    p.dep_p = 0.40;
    p.mean_block_len = 5.5;
    p.frac_loop_branches = 0.25;
    p.frac_biased_branches = 0.35;
    p.frac_patterned_branches = 0.12;
    p.frac_random_branches = 0.28;
    p.warm_frac = 0.07;
    p.cold_frac = 0.008;
    return p;
}

/** twolf: place-and-route; larger working set, moderate ILP. */
WorkloadProfile
makeTwolf()
{
    auto p = base("300.twolf", ThermalCategory::Medium, 300);
    p.mix = {.int_alu = 0.40, .int_mult = 0.01, .int_div = 0.002,
             .fp_alu = 0.04, .fp_mult = 0.01, .fp_div = 0.001,
             .load = 0.28, .store = 0.10, .branch = 0.15};
    p.dep_p = 0.34;
    p.mean_block_len = 6.5;
    p.frac_loop_branches = 0.35;
    p.frac_biased_branches = 0.35;
    p.frac_patterned_branches = 0.10;
    p.frac_random_branches = 0.20;
    p.warm_frac = 0.13;
    p.cold_frac = 0.012;
    return p;
}

/** gap: group theory; persistently within a degree of emergency. */
WorkloadProfile
makeGap()
{
    auto p = base("254.gap", ThermalCategory::High, 254);
    p.mix = {.int_alu = 0.42, .int_mult = 0.02, .int_div = 0.002,
             .fp_alu = 0.01, .fp_mult = 0.0, .fp_div = 0.0,
             .load = 0.27, .store = 0.10, .branch = 0.14};
    p.dep_p = 0.42;
    p.mean_block_len = 7.0;
    p.frac_loop_branches = 0.45;
    p.frac_biased_branches = 0.30;
    p.frac_patterned_branches = 0.10;
    p.frac_random_branches = 0.15;
    p.warm_frac = 0.08;
    p.cold_frac = 0.008;
    return p;
}

// --------------------------------------------------------------------- low

/** gzip: streaming compression; modest sustained activity. */
WorkloadProfile
makeGzip()
{
    auto p = base("164.gzip", ThermalCategory::Low, 164);
    p.mix = {.int_alu = 0.38, .int_mult = 0.002, .int_div = 0.0,
             .fp_alu = 0.0, .fp_mult = 0.0, .fp_div = 0.0,
             .load = 0.30, .store = 0.14, .branch = 0.16};
    p.dep_p = 0.45;
    p.mean_block_len = 6.0;
    p.frac_loop_branches = 0.40;
    p.frac_biased_branches = 0.30;
    p.frac_patterned_branches = 0.10;
    p.frac_random_branches = 0.20;
    p.warm_frac = 0.18;
    p.cold_frac = 0.012;
    return p;
}

/** wupwise: FP but memory bound; long dependence chains. */
WorkloadProfile
makeWupwise()
{
    auto p = base("168.wupwise", ThermalCategory::Medium, 168);
    p.mix = {.int_alu = 0.24, .int_mult = 0.0, .int_div = 0.0,
             .fp_alu = 0.17, .fp_mult = 0.08, .fp_div = 0.004,
             .load = 0.30, .store = 0.09, .branch = 0.10};
    p.dep_p = 0.48;
    p.mean_block_len = 9.0;
    p.frac_loop_branches = 0.70;
    p.frac_biased_branches = 0.20;
    p.frac_patterned_branches = 0.05;
    p.frac_random_branches = 0.05;
    p.warm_frac = 0.10;
    p.cold_frac = 0.024;
    return p;
}

/** vpr: pointer chasing over a cold graph; the coolest benchmark. */
WorkloadProfile
makeVpr()
{
    auto p = base("175.vpr", ThermalCategory::Low, 175);
    p.mix = {.int_alu = 0.36, .int_mult = 0.005, .int_div = 0.001,
             .fp_alu = 0.06, .fp_mult = 0.02, .fp_div = 0.002,
             .load = 0.32, .store = 0.08, .branch = 0.15};
    p.dep_p = 0.55;
    p.mean_block_len = 6.0;
    p.stride_frac = 0.2;
    p.frac_loop_branches = 0.30;
    p.frac_biased_branches = 0.30;
    p.frac_patterned_branches = 0.10;
    p.frac_random_branches = 0.30;
    p.warm_frac = 0.10;
    p.cold_frac = 0.030;
    return p;
}

} // namespace

std::vector<WorkloadProfile>
allSpecProfiles()
{
    // Paper Table 4 order.
    return {
        makeGzip(), makeWupwise(), makeVpr(), makeGcc(), makeMesa(),
        makeArt(), makeEquake(), makeCrafty(), makeFacerec(), makeFma3d(),
        makeParser(), makeEon(), makePerlbmk(), makeGap(), makeVortex(),
        makeBzip2(), makeTwolf(), makeApsi(),
    };
}

std::vector<std::string>
specProfileNames()
{
    std::vector<std::string> names;
    for (const auto &p : allSpecProfiles())
        names.push_back(p.name);
    return names;
}

WorkloadProfile
specProfile(const std::string &name)
{
    for (auto &p : allSpecProfiles()) {
        // Accept both "176.gcc" and "gcc".
        if (p.name == name)
            return p;
        auto dot = p.name.find('.');
        if (dot != std::string::npos && p.name.substr(dot + 1) == name)
            return p;
    }
    fatal("unknown benchmark profile '", name, "'");
}

} // namespace thermctl
