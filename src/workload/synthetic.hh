/**
 * @file
 * Deterministic synthetic workload generator.
 *
 * A SyntheticWorkload expands a WorkloadProfile into an infinite,
 * reproducible stream of micro-ops with genuine program structure: a static
 * set of basic blocks arranged in loops and functions, real register
 * dependences, and region-based memory address streams. The core's branch
 * predictor and caches therefore see learnable (or deliberately
 * unlearnable) behaviour, just as they would replaying a SimpleScalar EIO
 * trace of a real benchmark.
 */

#ifndef THERMCTL_WORKLOAD_SYNTHETIC_HH
#define THERMCTL_WORKLOAD_SYNTHETIC_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "workload/instruction_stream.hh"
#include "workload/profile.hh"

namespace thermctl
{

/** Infinite micro-op stream synthesized from a WorkloadProfile. */
class SyntheticWorkload : public InstructionStream
{
  public:
    /** Build the static program structure for the given profile. */
    explicit SyntheticWorkload(WorkloadProfile profile);

    MicroOp next() override;
    MicroOp synthesizeAt(Addr pc) override;

    const WorkloadProfile &profile() const { return profile_; }

    /** Committed-path instructions generated so far. */
    std::uint64_t generated() const { return generated_; }

    /** Index of the currently active phase (0 when no phases defined). */
    std::size_t currentPhase() const { return phase_index_; }

  private:
    /** A static conditional/loop branch with its runtime state. */
    struct StaticBranch
    {
        BranchKind kind = BranchKind::Biased;
        std::uint32_t trip_count = 8;    ///< LoopBack
        double taken_prob = 0.9;         ///< Biased
        std::uint32_t pattern = 0;       ///< Patterned bitmask
        std::uint8_t pattern_len = 4;    ///< Patterned period
        std::uint32_t taken_block = 0;   ///< block executed when taken
        // runtime
        std::uint32_t counter = 0;       ///< loop iteration / pattern pos
    };

    /** A static basic block of the synthetic program. */
    struct Block
    {
        Addr base_pc = 0;
        std::uint8_t len = 4;            ///< micro-ops incl. terminator
        bool ends_in_call = false;
        std::uint32_t callee = 0;        ///< function index when call
        StaticBranch branch;             ///< terminator when not a call
    };

    /** A synthetic leaf function: one block ending in a return. */
    struct Function
    {
        Addr base_pc = 0;
        std::uint8_t len = 4;            ///< micro-ops incl. return
    };

    /** Parameters derived from profile + current phase. */
    struct EffectiveParams
    {
        std::vector<double> op_weights; ///< non-branch class weights
        double cold_frac = 0.01;
        double warm_frac = 0.06;
        double dep_p = 0.35;
    };

    void buildProgram();
    void recomputePhaseParams();
    void advancePhaseAccounting();

    /** Sample a non-branch op class from the effective mix. */
    OpClass sampleOpClass();

    /** Fill dependence and payload fields for a non-terminator op. */
    MicroOp makeBodyOp(Addr pc);

    /** Produce the terminator micro-op of the current block. */
    MicroOp makeTerminator();

    /** Record a produced destination register. */
    void pushDest(RegId reg, bool fp);

    /** Pick a source register with geometric dependence distance. */
    RegId pickSrc(bool fp);

    /** Allocate the next destination register. */
    RegId allocDest(bool fp);

    /** Generate a data memory address for the current phase. */
    Addr genMemAddr();

    WorkloadProfile profile_;
    Rng rng_;
    Rng wrong_rng_;

    std::vector<Block> blocks_;
    std::vector<Function> functions_;

    // execution cursor
    bool in_function_ = false;
    std::uint32_t cur_block_ = 0;
    std::uint32_t cur_func_ = 0;
    std::uint8_t cur_off_ = 0;
    std::vector<std::uint32_t> call_stack_; ///< resume block indices

    // dependence tracking
    static constexpr std::size_t kDestRing = 64;
    std::vector<RegId> recent_int_;
    std::vector<RegId> recent_fp_;
    std::size_t int_head_ = 0;
    std::size_t fp_head_ = 0;
    RegId next_int_dest_ = 2;
    RegId next_fp_dest_ = 2;

    // memory address streams
    Addr hot_stride_pos_ = 0;
    Addr warm_stride_pos_ = 0;
    Addr cold_stride_pos_ = 0;

    // phase machinery
    std::size_t phase_index_ = 0;
    std::uint64_t phase_insts_left_ = 0;
    EffectiveParams eff_;

    std::uint64_t generated_ = 0;
};

} // namespace thermctl

#endif // THERMCTL_WORKLOAD_SYNTHETIC_HH
