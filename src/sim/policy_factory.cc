#include "sim/policy_factory.hh"

#include <algorithm>
#include <array>

#include "common/logging.hh"
#include "dtm/failsafe.hh"

namespace thermctl
{

const char *
dtmPolicyKindName(DtmPolicyKind kind)
{
    switch (kind) {
      case DtmPolicyKind::None: return "none";
      case DtmPolicyKind::Toggle1: return "toggle1";
      case DtmPolicyKind::Toggle2: return "toggle2";
      case DtmPolicyKind::Manual: return "M";
      case DtmPolicyKind::P: return "P";
      case DtmPolicyKind::PI: return "PI";
      case DtmPolicyKind::PID: return "PID";
      case DtmPolicyKind::Throttle: return "throttle";
      case DtmPolicyKind::SpecControl: return "spec-ctrl";
      case DtmPolicyKind::VfScale: return "vf-scaling";
      case DtmPolicyKind::Hierarchical: return "PID+vf";
      case DtmPolicyKind::PerCorePid: return "percore-PID";
      case DtmPolicyKind::AdjIntegral: return "adj-integral";
      default: return "?";
    }
}

const char *
budgetPolicyName(BudgetPolicy policy)
{
    switch (policy) {
      case BudgetPolicy::Uniform: return "uniform";
      case BudgetPolicy::DemandProportional: return "demand";
      case BudgetPolicy::ThermalHeadroom: return "headroom";
      default: return "?";
    }
}

bool
parseBudgetPolicy(const std::string &name, BudgetPolicy &out)
{
    for (BudgetPolicy p :
         {BudgetPolicy::Uniform, BudgetPolicy::DemandProportional,
          BudgetPolicy::ThermalHeadroom}) {
        if (name == budgetPolicyName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

bool
isMulticorePolicy(DtmPolicyKind kind)
{
    return kind == DtmPolicyKind::PerCorePid
        || kind == DtmPolicyKind::AdjIntegral;
}

namespace
{

/** The kinds a user can name on the CLI or over the wire. */
constexpr std::array<DtmPolicyKind, 13> kNamedPolicies = {
    DtmPolicyKind::None,        DtmPolicyKind::Toggle1,
    DtmPolicyKind::Toggle2,     DtmPolicyKind::Manual,
    DtmPolicyKind::P,           DtmPolicyKind::PI,
    DtmPolicyKind::PID,         DtmPolicyKind::Throttle,
    DtmPolicyKind::SpecControl, DtmPolicyKind::VfScale,
    DtmPolicyKind::Hierarchical, DtmPolicyKind::PerCorePid,
    DtmPolicyKind::AdjIntegral,
};

} // namespace

std::vector<std::string>
dtmPolicyNames()
{
    std::vector<std::string> names;
    names.reserve(kNamedPolicies.size());
    for (DtmPolicyKind kind : kNamedPolicies)
        names.emplace_back(dtmPolicyKindName(kind));
    return names;
}

bool
parseDtmPolicyKind(const std::string &name, DtmPolicyKind &out)
{
    for (DtmPolicyKind kind : kNamedPolicies) {
        if (name == dtmPolicyKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

FopdtPlant
deriveDtmPlant(const Floorplan &floorplan, const PowerModel &power,
               const DtmConfig &dtm, Seconds cycle_seconds)
{
    FopdtPlant plant;
    plant.tau = 0.0;
    plant.gain = 0.0;
    for (std::size_t i = 0; i < kNumHotspotStructures; ++i) {
        const auto id = static_cast<StructureId>(i);
        const auto &blk = floorplan.block(id);
        plant.tau = std::max(plant.tau, blk.rc().value());
        // Power swing commanded by the duty range: about half the
        // block's peak (from full activity down to the gated floor).
        const double swing = 0.5 * power.peak()[id];
        plant.gain = std::max(plant.gain, blk.resistance * swing);
    }
    plant.dead_time =
        0.5 * static_cast<double>(dtm.sample_interval) * cycle_seconds;
    return plant;
}

namespace
{

/** Wrap in the sensor-fault failsafe when the settings ask for it. */
std::unique_ptr<DtmPolicy>
maybeFailsafe(std::unique_ptr<DtmPolicy> policy,
              const DtmPolicySettings &settings)
{
    if (!settings.failsafe)
        return policy;
    FailsafeConfig cfg;
    cfg.stuck_samples = settings.failsafe_stuck_samples;
    cfg.min_plausible = settings.failsafe_min_plausible;
    cfg.max_plausible = settings.failsafe_max_plausible;
    return std::make_unique<FailsafePolicy>(std::move(policy), cfg);
}

std::unique_ptr<DtmPolicy>
makeInnerPolicy(const DtmPolicySettings &settings, const FopdtPlant &plant,
                const DtmConfig &dtm, Seconds cycle_seconds)
{
    const double sample_dt =
        static_cast<double>(dtm.sample_interval) * cycle_seconds;

    auto make_ct = [&](ControllerKind kind, Celsius setpoint,
                       Celsius range_low) {
        PidConfig cfg = tuneLoopShaping(kind, plant, settings.shaping);
        cfg.setpoint = setpoint;
        cfg.dt = sample_dt;
        cfg.out_min = 0.0;
        cfg.out_max = 1.0;
        cfg.anti_windup = AntiWindup::Conditional;
        cfg.integral_init = cfg.out_max; // cool chip starts at full speed
        return std::make_unique<CtPolicy>(kind, cfg, range_low);
    };

    switch (settings.kind) {
      case DtmPolicyKind::None:
        return std::make_unique<NoDtmPolicy>();
      case DtmPolicyKind::Toggle1:
        return std::make_unique<FixedTogglePolicy>(
            0.0, settings.nonct_trigger, settings.policy_delay,
            "toggle1");
      case DtmPolicyKind::Toggle2:
        return std::make_unique<FixedTogglePolicy>(
            0.5, settings.nonct_trigger, settings.policy_delay,
            "toggle2");
      case DtmPolicyKind::Manual:
        return std::make_unique<ManualProportionalPolicy>(
            settings.nonct_trigger, settings.nonct_trigger + 1.0);
      case DtmPolicyKind::P:
        return make_ct(ControllerKind::P, settings.p_setpoint,
                       settings.p_range_low);
      case DtmPolicyKind::PI:
        return make_ct(ControllerKind::PI, settings.ct_setpoint,
                       settings.ct_range_low);
      case DtmPolicyKind::PID:
        return make_ct(ControllerKind::PID, settings.ct_setpoint,
                       settings.ct_range_low);
      case DtmPolicyKind::Throttle:
        return std::make_unique<FetchThrottlePolicy>(
            settings.throttle_width, settings.nonct_trigger,
            settings.policy_delay);
      case DtmPolicyKind::SpecControl:
        return std::make_unique<SpeculationControlPolicy>(
            settings.spec_max_branches, settings.nonct_trigger,
            settings.policy_delay);
      case DtmPolicyKind::VfScale:
        return std::make_unique<VoltageScalingPolicy>(
            settings.vf_scale, settings.nonct_trigger,
            settings.vf_policy_delay);
      case DtmPolicyKind::Hierarchical:
        return std::make_unique<HierarchicalPolicy>(
            make_ct(ControllerKind::PID, settings.ct_setpoint,
                    settings.ct_range_low),
            settings.hierarchy_backup_trigger, settings.vf_scale,
            settings.vf_policy_delay);
      case DtmPolicyKind::PerCorePid:
      case DtmPolicyKind::AdjIntegral:
        panic("policy '", dtmPolicyKindName(settings.kind),
              "' needs the multicore engine (src/multicore); it cannot "
              "run inside the single-core DTM manager");
      default:
        panic("unknown DTM policy kind");
    }
}

} // namespace

std::unique_ptr<DtmPolicy>
makeDtmPolicy(const DtmPolicySettings &settings, const FopdtPlant &plant,
              const DtmConfig &dtm, Seconds cycle_seconds)
{
    return maybeFailsafe(
        makeInnerPolicy(settings, plant, dtm, cycle_seconds), settings);
}

} // namespace thermctl
