/**
 * @file
 * Top-level simulation configuration: the paper's Table 2 machine, the
 * power/thermal environment, and the DTM policy selection with the
 * reconstructed threshold constants (see DESIGN.md Section 4).
 */

#ifndef THERMCTL_SIM_CONFIG_HH
#define THERMCTL_SIM_CONFIG_HH

#include "cache/hierarchy.hh"
#include "control/tuning.hh"
#include "cpu/config.hh"
#include "dtm/manager.hh"
#include "power/model.hh"
#include "thermal/floorplan.hh"
#include "thermal/rc_model.hh"
#include "workload/profile.hh"

namespace thermctl
{

/** The DTM techniques evaluated by the paper. */
enum class DtmPolicyKind
{
    None,    ///< baseline, no thermal management
    Toggle1, ///< fixed response: fetch fully off while engaged
    Toggle2, ///< fixed response: fetch every other cycle while engaged
    Manual,  ///< hand-built proportional controller "M"
    P,       ///< control-theoretic proportional
    PI,      ///< control-theoretic proportional-integral
    PID,     ///< control-theoretic PID
    // The other Brooks & Martonosi mechanisms the paper discusses (and
    // dismisses as inferior) in Section 2.1:
    Throttle,    ///< reduced fetch width while engaged
    SpecControl, ///< bounded unresolved branches while engaged
    VfScale,     ///< global voltage/frequency scaling while engaged
    Hierarchical, ///< PID toggling + V/f scaling backup near emergency
    // Multicore policies (src/multicore): per-core controllers driving
    // the DVFS ladder, coordinated by the chip-level budget supervisor.
    PerCorePid,  ///< per-core fixed-gain PID on DVFS (ControlPULP-style)
    AdjIntegral, ///< per-core adjustable-gain integral (Rao et al.)
};

/** @return printable policy name ("toggle1", "PID", ...). */
const char *dtmPolicyKindName(DtmPolicyKind kind);

/** All policies in the order the paper discusses them. */
inline constexpr std::array<DtmPolicyKind, 7> kAllPolicies = {
    DtmPolicyKind::None, DtmPolicyKind::Toggle1, DtmPolicyKind::Toggle2,
    DtmPolicyKind::Manual, DtmPolicyKind::P, DtmPolicyKind::PI,
    DtmPolicyKind::PID,
};

/** Thresholds and parameters for the DTM policies (paper Section 5.3). */
struct DtmPolicySettings
{
    DtmPolicyKind kind = DtmPolicyKind::None;

    /** Trigger for toggle1/toggle2/M: 1.0 below the emergency level. */
    Celsius nonct_trigger = 110.8;

    /** Minimum engagement time of the fixed policies (set empirically). */
    Cycle policy_delay = 30000;

    // P controller: setpoint 111.2, toggling engages above 110.8.
    Celsius p_setpoint = 111.2;
    Celsius p_range_low = 110.8;

    // PI/PID: setpoint 111.6 -> trigger within 0.2 of emergency.
    Celsius ct_setpoint = 111.6;
    Celsius ct_range_low = 111.4;

    /** Loop-shaping spec for the CT controllers. */
    LoopShapingSpec shaping{};

    // ---- Section 2.1 auxiliary mechanisms (inferior baselines) ----
    /** Fetch width while throttling is engaged. */
    std::uint32_t throttle_width = 2;

    /** Unresolved-branch bound while speculation control is engaged. */
    std::uint32_t spec_max_branches = 2;

    /** Clock scale while V/f scaling is engaged. */
    double vf_scale = 0.7;

    /**
     * Policy delay for V/f scaling: long, because every transition
     * costs a resynchronization stall (paper: "it must be left in place
     * for a significant policy delay").
     */
    Cycle vf_policy_delay = 200000;

    /**
     * Backup trigger of the hierarchical policy: scaling engages only
     * when temperature gets "truly close to emergency" (paper §2.1).
     */
    Celsius hierarchy_backup_trigger = 111.75;

    // ---- Failsafe wrapper (sensor-fault resilience; dtm/failsafe.hh) --
    /** Wrap the selected policy in a FailsafePolicy. */
    bool failsafe = false;

    /** Consecutive bit-identical samples before declaring stuck. */
    std::uint64_t failsafe_stuck_samples = 8;

    /** Plausible sensed-temperature range; outside it trips fallback. */
    Celsius failsafe_min_plausible = 20.0;
    Celsius failsafe_max_plausible = 150.0;
};

/** How the budget coordinator splits the chip budget across cores. */
enum class BudgetPolicy
{
    Uniform,            ///< equal share per core
    DemandProportional, ///< shares follow recent per-core power demand
    ThermalHeadroom,    ///< shares follow distance to the emergency level
};

/** @return printable budget-policy name ("uniform", ...). */
const char *budgetPolicyName(BudgetPolicy policy);

/** Hard cap on cores per chip (bounds protocol decode allocations). */
inline constexpr std::uint32_t kMaxCores = 64;

/**
 * Multicore chip configuration (src/multicore). The defaults describe a
 * single-core chip, which runs through the classic single-core engine;
 * num_cores > 1 (or a multicore policy kind) selects the multicore
 * engine backend.
 */
struct MulticoreConfig
{
    /** Cores on the chip, each a full paper floorplan. 1..kMaxCores. */
    std::uint32_t num_cores = 1;

    /**
     * Lateral thermal resistance (K/W) between each pair of facing
     * boundary blocks of adjacent cores. <= 0 disables inter-core
     * coupling (cores interact only through the shared heatsink).
     */
    KelvinPerWatt coupling_resistance = 4.0;

    /**
     * Chip-level power budget (Watts) split across cores each control
     * epoch. <= 0 disables budgeting (every core runs uncapped).
     */
    Watts chip_budget = 0.0;

    BudgetPolicy budget_policy = BudgetPolicy::Uniform;

    /** Budget epoch length, in controller samples (>= 1). */
    std::uint32_t budget_epoch_samples = 10;

    /** DVFS ladder levels above the floor (level==levels -> nominal). */
    std::uint32_t dvfs_levels = 7;

    /** Clock scale at ladder level 0 (the slowest operating point). */
    double dvfs_min_scale = 0.3;
};

/** Complete configuration of one simulation run. */
struct SimConfig
{
    WorkloadProfile workload{};

    /**
     * When non-empty, drive the core from this recorded micro-op trace
     * (see workload/trace.hh) instead of synthesizing from `workload`.
     * The trace loops by default so long thermal runs can replay a
     * short capture.
     */
    std::string trace_path{};
    bool trace_loop = true;
    CpuConfig cpu{};
    MemoryHierarchyConfig memory{};
    PowerConfig power{};
    FloorplanConfig floorplan{};
    ThermalConfig thermal{};
    DtmConfig dtm{};
    DtmPolicySettings policy{};
    MulticoreConfig multicore{};
};

} // namespace thermctl

#endif // THERMCTL_SIM_CONFIG_HH
