/**
 * @file
 * Builds DTM policy objects from DtmPolicySettings, deriving the CT
 * controller gains from the thermal plant exactly as the paper does:
 * FOPDT plant with the longest hot-spot time constant, steady-state gain
 * from the thermal R times the actuator power swing, and dead time of
 * half the sampling period.
 */

#ifndef THERMCTL_SIM_POLICY_FACTORY_HH
#define THERMCTL_SIM_POLICY_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "control/plant.hh"
#include "dtm/policy.hh"
#include "power/model.hh"
#include "sim/config.hh"
#include "thermal/floorplan.hh"

namespace thermctl
{

/** Every policy name accepted by parseDtmPolicyKind (CLI/wire set). */
std::vector<std::string> dtmPolicyNames();

/**
 * Inverse of dtmPolicyKindName for the user-selectable policies.
 * @return false when `name` is not a known policy name.
 */
bool parseDtmPolicyKind(const std::string &name, DtmPolicyKind &out);

/**
 * Inverse of budgetPolicyName.
 * @return false when `name` is not a known budget-policy name.
 */
bool parseBudgetPolicy(const std::string &name, BudgetPolicy &out);

/**
 * @return true for the policy kinds that only run inside the multicore
 * engine (PerCorePid, AdjIntegral). makeDtmPolicy panics on them; the
 * experiment runner dispatches such configs to the multicore backend.
 */
bool isMulticorePolicy(DtmPolicyKind kind);

/**
 * Derive the FOPDT plant seen by the DTM controller.
 *
 * tau: the longest RC among the hot-spot blocks (the paper: "we used the
 * longest time constant of the various blocks under study").
 * gain: max over hot-spot blocks of R * (half the block's peak power) —
 * the temperature swing a full-range duty change can command.
 * dead time: half the sampling period (paper Section 3.2).
 */
FopdtPlant deriveDtmPlant(const Floorplan &floorplan,
                          const PowerModel &power, const DtmConfig &dtm,
                          Seconds cycle_seconds);

/** Construct the configured policy (gains tuned for CT kinds). */
std::unique_ptr<DtmPolicy> makeDtmPolicy(const DtmPolicySettings &settings,
                                         const FopdtPlant &plant,
                                         const DtmConfig &dtm,
                                         Seconds cycle_seconds);

} // namespace thermctl

#endif // THERMCTL_SIM_POLICY_FACTORY_HH
