/**
 * @file
 * Experiment runner: executes benchmark x policy grids with the standard
 * warm-up/measure protocol and returns the metrics the paper's tables
 * and figures are built from.
 */

#ifndef THERMCTL_SIM_EXPERIMENT_HH
#define THERMCTL_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace thermctl
{

/** Run-length protocol. */
struct RunProtocol
{
    /** Warm-up cycles before measurement (thermal warm-start inside). */
    std::uint64_t warmup_cycles = 300000;

    /** Measured cycles. */
    std::uint64_t measure_cycles = 1200000;
};

/** Metrics of one benchmark x policy run. */
struct RunResult
{
    std::string benchmark;
    std::string policy;
    ThermalCategory category = ThermalCategory::Medium;

    double ipc = 0.0;

    /**
     * Raw committed-per-cycle IPC, unnormalized for wall time. Equals
     * `ipc` except under frequency scaling (see
     * Simulator::measuredPerformance).
     */
    double raw_ipc = 0.0;

    Watts avg_power = 0.0;
    double emergency_fraction = 0.0; ///< cycles any block > emergency
    double stress_fraction = 0.0;    ///< cycles any block > stress
    Celsius max_temperature = 0.0;
    double mean_duty = 1.0;          ///< DTM actuator mean duty

    /** Per-structure detail (paper Tables 6-8). */
    struct StructureDetail
    {
        Celsius avg_temp = 0.0;
        Celsius max_temp = 0.0;
        double emergency_fraction = 0.0;
        double stress_fraction = 0.0;
        Watts avg_power = 0.0;
    };
    std::array<StructureDetail, kNumStructures> structures{};
};

/**
 * Multicore engine backend hook. The engine layer cannot include
 * src/multicore (it sits above engine in .thermctl-layers), so the
 * multicore subsystem registers its run function here at startup and
 * ExperimentRunner::runOne dispatches multicore configs to it. Entry
 * points that may see multicore configs call
 * multicore::ensureBackendRegistered() explicitly (static initializers
 * in a static archive are dead-stripped).
 */
using MulticoreRunFn = RunResult (*)(const SimConfig &,
                                     const RunProtocol &);

/** Install the multicore backend (idempotent; last writer wins). */
void registerMulticoreBackend(MulticoreRunFn fn);

/** @return true once a multicore backend has been registered. */
bool multicoreBackendRegistered();

/**
 * @return true when `cfg` needs the multicore engine: more than one
 * core, or a policy kind only the multicore engine implements.
 */
bool needsMulticoreEngine(const SimConfig &cfg);

/** Executes runs under a fixed protocol. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(const RunProtocol &protocol = {});

    /**
     * Run one benchmark under one policy from a template configuration
     * (workload and policy fields are overwritten).
     */
    RunResult runOne(const WorkloadProfile &profile,
                     const DtmPolicySettings &policy,
                     const SimConfig &base = {}) const;

    /**
     * Run every profile under one policy.
     *
     * Thin wrapper over the sweep engine (sim/sweep.hh): profiles run
     * concurrently on the default worker pool (THERMCTL_JOBS), results
     * come back in profile order, and no disk cache is touched. Build a
     * SweepSpec directly for multi-policy grids, variants, caching, or
     * progress telemetry.
     */
    std::vector<RunResult> runAll(
        const std::vector<WorkloadProfile> &profiles,
        const DtmPolicySettings &policy, const SimConfig &base = {}) const;

    const RunProtocol &protocol() const { return protocol_; }

  private:
    RunProtocol protocol_;
};

/**
 * Classify a no-DTM run into the paper's Table 5 categories from its
 * emergency/stress fractions.
 */
ThermalCategory classifyThermalBehaviour(const RunResult &no_dtm_run);

} // namespace thermctl

#endif // THERMCTL_SIM_EXPERIMENT_HH
