/**
 * @file
 * The composed simulator: synthetic workload -> out-of-order core ->
 * per-structure power -> per-block thermal RC -> DTM -> fetch gating,
 * advanced cycle by cycle exactly as in the paper's methodology
 * ("temperature is computed on a cycle-by-cycle basis").
 */

#ifndef THERMCTL_SIM_SIMULATOR_HH
#define THERMCTL_SIM_SIMULATOR_HH

#include <functional>
#include <limits>
#include <memory>

#include "cpu/core.hh"
#include "dtm/manager.hh"
#include "power/model.hh"
#include "sim/config.hh"
#include "sim/policy_factory.hh"
#include "thermal/rc_model.hh"
#include "workload/synthetic.hh"
#include "workload/trace.hh"

namespace thermctl
{

/** Per-structure measurement aggregates for one run. */
struct StructureRunStats
{
    double temp_sum = 0.0;
    Celsius temp_max = std::numeric_limits<double>::lowest();
    std::uint64_t emergency_cycles = 0;
    std::uint64_t stress_cycles = 0;
};

/** Whole-run measurement aggregates. */
struct SimulatorStats
{
    std::uint64_t cycles = 0;
    PowerVector power_sum;
    std::array<StructureRunStats, kNumStructures> structures{};

    /** @return average chip-wide power over the window, Watts. */
    Watts
    avgPower() const
    {
        return cycles ? power_sum.total() / static_cast<double>(cycles)
                      : 0.0;
    }

    /** @return average power of one structure, Watts. */
    Watts
    avgStructurePower(StructureId id) const
    {
        return cycles ? power_sum[id] / static_cast<double>(cycles)
                      : 0.0;
    }

    /** @return time-average temperature of one structure. */
    Celsius
    avgTemperature(StructureId id) const
    {
        const auto &s = structures[static_cast<std::size_t>(id)];
        return cycles ? s.temp_sum / static_cast<double>(cycles) : 0.0;
    }
};

/** One fully wired simulation instance. */
class Simulator
{
  public:
    explicit Simulator(const SimConfig &cfg);

    /** Advance one cycle. */
    void tick();

    /** Advance n cycles. */
    void run(std::uint64_t n);

    /**
     * The standard warm-up protocol: run half the span cold, jump the
     * thermal state to the steady state implied by the measured average
     * power, run the second half to settle, then clear every statistic
     * so a measurement window can begin.
     */
    void warmUp(std::uint64_t cycles);

    /** Clear all measurement statistics (not the machine state). */
    void resetMeasurement();

    /** Per-cycle probe invoked every `interval` cycles (0 disables). */
    using Probe = std::function<void(const Simulator &, Cycle)>;
    void setProbe(Probe probe, Cycle interval);

    /**
     * Replace the DTM policy with a custom instance (rebuilds the DTM
     * manager under the current configuration). Used by ablations that
     * need controller variants the factory does not expose.
     */
    void setDtmPolicy(std::unique_ptr<DtmPolicy> policy);

    Cycle now() const { return now_; }
    const Core &core() const { return core_; }
    const SimplifiedRCModel &thermal() const { return thermal_; }
    const DtmManager &dtm() const { return *dtm_; }
    const PowerModel &power() const { return power_; }
    const SimulatorStats &stats() const { return stats_; }
    const SimConfig &config() const { return cfg_; }
    const PowerVector &lastPower() const { return last_power_; }
    const FopdtPlant &dtmPlant() const { return plant_; }
    const Floorplan &floorplan() const { return floorplan_; }

    /** IPC over the measurement window (since resetMeasurement). */
    double measuredIpc() const { return core_.stats().ipc(); }

    /**
     * Performance over the measurement window normalized to nominal
     * clock periods of wall time: committed / (wall_seconds * f0).
     * Identical to measuredIpc() unless frequency scaling engaged —
     * with a scaled clock each simulated cycle covers more wall time,
     * which this metric charges against the run.
     */
    double measuredPerformance() const;

    /** Current clock scale in (0, 1]; 1 = nominal frequency. */
    double clockScale() const { return freq_scale_; }

  private:
    SimConfig cfg_;
    std::unique_ptr<InstructionStream> workload_;
    MemoryHierarchy memory_;
    Core core_;
    PowerModel power_;
    Floorplan floorplan_;
    SimplifiedRCModel thermal_;
    FopdtPlant plant_;
    std::unique_ptr<DtmManager> dtm_;

    bool fetch_allowed_ = true;
    Cycle now_ = 0;
    PowerVector last_power_;
    SimulatorStats stats_;

    // Voltage/frequency scaling state.
    double freq_scale_ = 1.0;
    Cycle resync_until_ = 0;
    double measured_wall_seconds_ = 0.0;

    Probe probe_;
    Cycle probe_interval_ = 0;
};

} // namespace thermctl

#endif // THERMCTL_SIM_SIMULATOR_HH
