#include "sim/sweep.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/mutex.hh"
#include "common/serialize.hh"
#include "fault/fault.hh"

namespace thermctl
{

namespace
{

/**
 * Code-version salt folded into every cache digest. Bump whenever a
 * change alters simulation *behaviour* without altering any SimConfig
 * field (new microarchitectural detail, changed constants, fixed bug):
 * stale entries then miss instead of serving wrong results.
 */
constexpr std::string_view kSweepCacheSalt = "thermctl-sweep-v4";

/** Cache entry magic ("ThermCtl Run, format 2"). */
constexpr std::string_view kCacheMagic = "TCRUN002";

// The digest must cover every configuration field: a field the hash
// misses is a field whose change silently serves stale cached results.
// The name-level contract is enforced by thermctl_analyze's
// field-coverage pass (DESIGN.md §16): a field absent from its feed()
// overload fails --ci. These size guards remain as a backstop for type
// changes that keep field names (and as a reminder to bump
// kSweepCacheSalt when behaviour changed).
#if defined(__x86_64__) && defined(__linux__)
static_assert(sizeof(InstructionMix) == 72
                  && sizeof(WorkloadPhase) == 48
                  && sizeof(WorkloadProfile) == 272,
              "workload config changed: update feed() in sweep.cc");
static_assert(sizeof(HybridPredictorConfig) == 56
                  && sizeof(CpuConfig) == 136,
              "cpu config changed: update feed() in sweep.cc");
static_assert(sizeof(CacheConfig) == 56 && sizeof(TlbConfig) == 12
                  && sizeof(MemoryHierarchyConfig) == 184,
              "memory config changed: update feed() in sweep.cc");
static_assert(sizeof(Technology) == 96 && sizeof(PowerConfig) == 264,
              "power config changed: update feed() in sweep.cc");
static_assert(sizeof(FloorplanConfig) == 144
                  && sizeof(ThermalConfig) == 16,
              "thermal config changed: update feed() in sweep.cc");
static_assert(sizeof(SensorConfig) == 64 && sizeof(DtmConfig) == 104,
              "dtm config changed: update feed() in sweep.cc");
static_assert(sizeof(LoopShapingSpec) == 24
                  && sizeof(DtmPolicySettings) == 144,
              "policy settings changed: update feed() in sweep.cc");
static_assert(sizeof(MulticoreConfig) == 48,
              "multicore config changed: update feed() in sweep.cc");
static_assert(sizeof(SimConfig) == 1352,
              "SimConfig changed: update sweepConfigDigest()");
#endif

void
feed(HashStream &h, const InstructionMix &m)
{
    h.f64(m.int_alu).f64(m.int_mult).f64(m.int_div);
    h.f64(m.fp_alu).f64(m.fp_mult).f64(m.fp_div);
    h.f64(m.load).f64(m.store).f64(m.branch);
}

void
feed(HashStream &h, const WorkloadPhase &p)
{
    h.u64(p.length_insts).f64(p.fp_scale).f64(p.mem_scale);
    h.f64(p.cold_frac_override).f64(p.dep_p_override);
    h.f64(p.random_branch_override);
}

void
feed(HashStream &h, const WorkloadProfile &w)
{
    h.str(w.name).u64(static_cast<std::uint64_t>(w.category));
    feed(h, w.mix);
    h.f64(w.dep_p).f64(w.second_src_prob);
    h.f64(w.frac_loop_branches).f64(w.frac_biased_branches);
    h.f64(w.frac_patterned_branches).f64(w.frac_random_branches);
    h.f64(w.mean_trip_count).f64(w.call_prob);
    h.f64(w.warm_frac).f64(w.cold_frac);
    h.u64(w.hot_bytes).u64(w.warm_bytes).u64(w.cold_bytes);
    h.f64(w.stride_frac);
    h.u64(w.num_blocks).f64(w.mean_block_len);
    h.u64(w.phases.size());
    for (const auto &phase : w.phases)
        feed(h, phase);
    h.u64(w.seed);
}

void
feed(HashStream &h, const CpuConfig &c)
{
    h.u64(c.fetch_width).u64(c.dispatch_width).u64(c.commit_width);
    h.u64(c.int_issue_width).u64(c.fp_issue_width);
    h.u64(c.window_size).u64(c.lsq_size);
    h.u64(c.frontend_capacity).u64(c.frontend_depth);
    h.u64(c.num_int_alu).u64(c.num_int_mult);
    h.u64(c.num_fp_alu).u64(c.num_fp_mult).u64(c.num_mem_ports);
    h.u64(c.lat_int_alu).u64(c.lat_int_mult).u64(c.lat_int_div);
    h.u64(c.lat_fp_alu).u64(c.lat_fp_mult).u64(c.lat_fp_div);
    h.u64(c.bpred.bimod_entries).u64(c.bpred.gag_entries);
    h.u64(c.bpred.gag_history_bits).u64(c.bpred.chooser_entries);
    h.u64(c.bpred.btb_entries).u64(c.bpred.btb_ways);
    h.u64(c.bpred.ras_entries);
}

void
feed(HashStream &h, const CacheConfig &c)
{
    h.str(c.name).u64(c.size_bytes).u64(c.assoc);
    h.u64(c.block_bytes).u64(c.hit_latency);
}

void
feed(HashStream &h, const MemoryHierarchyConfig &m)
{
    feed(h, m.l1i);
    feed(h, m.l1d);
    feed(h, m.l2);
    h.u64(m.tlb.entries).u64(m.tlb.page_bytes).u64(m.tlb.miss_penalty);
    h.u64(m.memory_latency);
}

void
feed(HashStream &h, const PowerConfig &p)
{
    const Technology &t = p.tech;
    h.f64(t.feature_um).f64(t.vdd).f64(t.freq_hz);
    h.f64(t.c_gate_ff).f64(t.c_drain_ff).f64(t.c_wire_ff_per_um);
    h.f64(t.cell_width_um).f64(t.cell_height_um).f64(t.port_pitch_um);
    h.f64(t.sense_amp_energy_fj).f64(t.bitline_swing_v);
    h.f64(t.array_energy_scale);
    h.u64(static_cast<std::uint64_t>(p.gating)).f64(p.idle_fraction);
    h.f64(p.e_int_alu_op).f64(p.e_int_mult_op);
    h.f64(p.e_fp_alu_op).f64(p.e_fp_mult_op);
    h.f64(p.rest_base_watts).f64(p.e_decode_op);
    h.f64(p.voltage_scaling_alpha);
    h.b(p.leakage_enabled).f64(p.leakage_fraction_at_ref);
    h.f64(p.leakage_ref_temp).f64(p.leakage_doubling_c);
    h.f64s(p.structure_scale);
}

void
feed(HashStream &h, const FloorplanConfig &f)
{
    h.f64(f.die_thickness_m).f64(f.active_layer_m).f64(f.reference_temp);
    h.f64s(f.k_spread);
    h.f64(f.chip_resistance).f64(f.chip_capacitance).f64(f.ambient);
    h.str(f.flp_path);
}

void
feed(HashStream &h, const DtmConfig &d)
{
    h.u64(d.sample_interval);
    h.u64(static_cast<std::uint64_t>(d.engagement));
    h.u64(d.interrupt_delay).u64(d.resync_cycles).u64(d.toggle_levels);
    h.f64(d.sensor.offset).f64(d.sensor.noise_sigma);
    h.f64(d.sensor.quantum).u64(d.sensor.seed);
    h.u64(static_cast<std::uint64_t>(d.sensor.fault_mode));
    h.u64(d.sensor.fault_start).f64(d.sensor.dropout_p);
    h.f64(d.sensor.fault_value);
}

void
feed(HashStream &h, const DtmPolicySettings &s)
{
    h.u64(static_cast<std::uint64_t>(s.kind));
    h.f64(s.nonct_trigger).u64(s.policy_delay);
    h.f64(s.p_setpoint).f64(s.p_range_low);
    h.f64(s.ct_setpoint).f64(s.ct_range_low);
    h.f64(s.shaping.phase_margin_deg).f64(s.shaping.crossover_fraction);
    h.f64(s.shaping.max_crossover_tau_mult);
    h.u64(s.throttle_width).u64(s.spec_max_branches);
    h.f64(s.vf_scale).u64(s.vf_policy_delay);
    h.f64(s.hierarchy_backup_trigger);
    h.b(s.failsafe).u64(s.failsafe_stuck_samples);
    h.f64(s.failsafe_min_plausible).f64(s.failsafe_max_plausible);
}

void
feed(HashStream &h, const MulticoreConfig &m)
{
    h.u64(m.num_cores).f64(m.coupling_resistance);
    h.f64(m.chip_budget);
    h.u64(static_cast<std::uint64_t>(m.budget_policy));
    h.u64(m.budget_epoch_samples);
    h.u64(m.dvfs_levels).f64(m.dvfs_min_scale);
}

/** @return true when the bytes form a valid entry for `digest`. */
bool
validCacheBytes(const std::string &data, std::uint64_t digest,
                RunResult &result)
{
    if (data.size() < kCacheMagic.size() + 8)
        return false;
    if (std::string_view(data).substr(0, kCacheMagic.size())
        != kCacheMagic) {
        return false;
    }
    ByteReader r(
        std::string_view(data).substr(kCacheMagic.size()));
    if (r.u64() != digest || !r.ok())
        return false;
    return deserializeRunResult(
               std::string_view(data).substr(kCacheMagic.size() + 8),
               result)
           == RunResultDecodeStatus::Ok;
}

/**
 * Move a corrupt entry aside (path -> path.corrupt) so the next lookup
 * is an honest cold miss instead of re-validating — and re-failing on —
 * the same torn bytes forever. Warned once per process; the .corrupt
 * file is kept for post-mortem and swept by sweepCacheRecover().
 */
void
quarantineCacheEntry(const std::filesystem::path &path)
{
    static std::atomic<bool> warned{false};
    std::filesystem::path aside = path;
    aside += ".corrupt";
    std::error_code ec;
    std::filesystem::rename(path, aside, ec);
    if (ec)
        std::filesystem::remove(path, ec);
    if (!warned.exchange(true)) {
        warn("sweep: quarantined corrupt cache entry ", path.string(),
             " (cache self-heals; entry re-simulates once)");
    }
}

/** Inverse of hashHex: 16 lowercase hex digits -> u64. */
bool
parseHexDigest(const std::string &text, std::uint64_t &out)
{
    if (text.size() != 16)
        return false;
    std::uint64_t value = 0;
    for (char c : text) {
        int nibble;
        if (c >= '0' && c <= '9')
            nibble = c - '0';
        else if (c >= 'a' && c <= 'f')
            nibble = c - 'a' + 10;
        else
            return false;
        value = (value << 4) | static_cast<std::uint64_t>(nibble);
    }
    out = value;
    return true;
}

/**
 * @return true and fill `result` when `path` holds a valid entry.
 * A missing file is a plain miss; a present-but-invalid file is
 * quarantined when `heal` is set (the engine's read path) and left
 * untouched otherwise (read-only probes like sweepCacheLookup).
 */
bool
loadCacheEntry(const std::filesystem::path &path, std::uint64_t digest,
               RunResult &result, bool heal = false)
{
    if (THERMCTL_FAULT_POINT("cache.load").abort())
        return false; // as if the entry vanished: a plain miss
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    if (validCacheBytes(buf.str(), digest, result))
        return true;
    if (heal)
        quarantineCacheEntry(path);
    return false;
}

void
storeCacheEntry(const std::filesystem::path &path, std::uint64_t digest,
                const RunResult &result)
{
    // Write-to-temp + rename keeps concurrent writers (threads of this
    // process or entirely separate bench binaries) from ever exposing a
    // torn entry; the loser of a rename race simply overwrites an
    // identical file.
    static std::atomic<bool> warned{false};
    const auto tid =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    const auto ticks = static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    std::filesystem::path tmp = path;
    tmp += ".tmp." + hashHex(tid ^ ticks);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            if (!warned.exchange(true))
                warn("sweep: cannot write cache entry ", tmp.string(),
                     "; caching continues best-effort");
            return;
        }
        out.write(kCacheMagic.data(),
                  static_cast<std::streamsize>(kCacheMagic.size()));
        ByteWriter w;
        w.u64(digest);
        std::string body = serializeRunResult(result);
        if (THERMCTL_FAULT_POINT("cache.publish").torn()) {
            // Simulate a crash mid-write that still got renamed (e.g.
            // power loss after rename, before data blocks landed): the
            // published entry is truncated and must be caught by the
            // checksum on load, then quarantined.
            body.resize(body.size() / 2);
        }
        out.write(w.buffer().data(),
                  static_cast<std::streamsize>(w.buffer().size()));
        out.write(body.data(), static_cast<std::streamsize>(body.size()));
        if (!out) {
            if (!warned.exchange(true))
                warn("sweep: short write on cache entry ", tmp.string());
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            return;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        if (!warned.exchange(true))
            warn("sweep: cannot publish cache entry ", path.string(),
                 " (", ec.message(), ")");
        std::filesystem::remove(tmp, ec);
    }
}

} // namespace

// --------------------------------------------------------------- SweepSpec

std::string
sweepKey(std::string_view workload, std::string_view policy,
         std::string_view variant)
{
    std::string key;
    key.reserve(workload.size() + policy.size() + variant.size() + 2);
    key.append(workload).append("/").append(policy);
    if (!variant.empty())
        key.append("/").append(variant);
    return key;
}

SweepSpec &
SweepSpec::protocol(const RunProtocol &proto)
{
    proto_ = proto;
    return *this;
}

SweepSpec &
SweepSpec::base(const SimConfig &cfg)
{
    base_ = cfg;
    return *this;
}

SweepSpec &
SweepSpec::workload(const WorkloadProfile &profile)
{
    workloads_.push_back(profile);
    return *this;
}

SweepSpec &
SweepSpec::workloads(const std::vector<WorkloadProfile> &profiles)
{
    workloads_.insert(workloads_.end(), profiles.begin(), profiles.end());
    return *this;
}

SweepSpec &
SweepSpec::policy(const DtmPolicySettings &policy, std::string label)
{
    if (label.empty())
        label = dtmPolicyKindName(policy.kind);
    policies_.emplace_back(policy, std::move(label));
    return *this;
}

SweepSpec &
SweepSpec::policies(const std::vector<DtmPolicySettings> &policies)
{
    for (const auto &p : policies)
        policy(p);
    return *this;
}

SweepSpec &
SweepSpec::variant(std::string name,
                   std::function<void(SimConfig &)> apply)
{
    variants_.push_back(SweepVariant{std::move(name), std::move(apply)});
    return *this;
}

SweepSpec &
SweepSpec::reseedWorkloads(bool on)
{
    reseed_ = on;
    return *this;
}

std::size_t
SweepSpec::size() const
{
    const std::size_t w = workloads_.empty() ? 1 : workloads_.size();
    const std::size_t p = policies_.empty() ? 1 : policies_.size();
    const std::size_t v = variants_.empty() ? 1 : variants_.size();
    return w * p * v;
}

std::vector<SweepPoint>
SweepSpec::points() const
{
    std::vector<WorkloadProfile> workloads = workloads_;
    if (workloads.empty())
        workloads.push_back(base_.workload);

    std::vector<std::pair<DtmPolicySettings, std::string>> policies =
        policies_;
    if (policies.empty())
        policies.emplace_back(base_.policy,
                              dtmPolicyKindName(base_.policy.kind));

    std::vector<SweepVariant> variants = variants_;
    if (variants.empty())
        variants.push_back(SweepVariant{"", {}});

    std::vector<SweepPoint> points;
    points.reserve(workloads.size() * policies.size() * variants.size());
    std::unordered_map<std::string, std::size_t> seen;

    for (const auto &w : workloads) {
        for (const auto &[policy, label] : policies) {
            for (const auto &v : variants) {
                SweepPoint pt;
                pt.key = sweepKey(w.name, label, v.name);
                pt.seed = hashString(pt.key);
                pt.index = points.size();
                pt.config = base_;
                if (v.apply)
                    v.apply(pt.config);
                pt.config.workload = w;
                pt.config.policy = policy;
                if (reseed_)
                    pt.config.workload.seed = pt.seed;
                auto [it, fresh] = seen.emplace(pt.key, pt.index);
                if (!fresh) {
                    fatal("sweep: duplicate grid point key '", pt.key,
                          "' (give distinct policy labels or variant "
                          "names)");
                }
                points.push_back(std::move(pt));
            }
        }
    }
    return points;
}

// ------------------------------------------------------------ SweepResults

std::vector<RunResult>
SweepResults::results() const
{
    std::vector<RunResult> out;
    out.reserve(outcomes_.size());
    for (const auto &oc : outcomes_)
        out.push_back(oc.result);
    return out;
}

const RunResult *
SweepResults::find(std::string_view key) const
{
    for (const auto &oc : outcomes_)
        if (oc.point.key == key)
            return &oc.result;
    return nullptr;
}

const RunResult &
SweepResults::at(std::string_view key) const
{
    const RunResult *r = find(key);
    if (!r)
        fatal("sweep: no grid point with key '", std::string(key), "'");
    return *r;
}

const RunResult &
SweepResults::at(std::string_view workload, std::string_view policy,
                 std::string_view variant) const
{
    return at(sweepKey(workload, policy, variant));
}

// ------------------------------------------------------------- SweepEngine

SweepEngine::SweepEngine(const SweepOptions &opts) : opts_(opts) {}

void
SweepEngine::setTelemetry(SweepTelemetry telemetry)
{
    telemetry_ = std::move(telemetry);
}

unsigned
SweepEngine::defaultJobs()
{
    if (const char *env = std::getenv("THERMCTL_JOBS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
        warn("sweep: ignoring invalid THERMCTL_JOBS='", env, "'");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::string
SweepEngine::defaultCacheDir()
{
    if (const char *env = std::getenv("THERMCTL_CACHE_DIR"))
        return env;
    if (const char *xdg = std::getenv("XDG_CACHE_HOME"))
        return (std::filesystem::path(xdg) / "thermctl").string();
    if (const char *home = std::getenv("HOME")) {
        return (std::filesystem::path(home) / ".cache" / "thermctl")
            .string();
    }
    return (std::filesystem::temp_directory_path() / "thermctl-cache")
        .string();
}

unsigned
SweepEngine::effectiveJobs(std::size_t grid_size) const
{
    const unsigned jobs = opts_.jobs ? opts_.jobs : defaultJobs();
    if (grid_size == 0)
        return 1;
    return static_cast<unsigned>(
        std::min<std::size_t>(jobs, grid_size));
}

SweepResults
SweepEngine::run(const SweepSpec &spec) const
{
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();

    std::vector<SweepPoint> points = spec.points();
    const RunProtocol proto = spec.runProtocol();
    const std::size_t n = points.size();

    SweepResults out;
    out.outcomes_.resize(n);
    if (n == 0)
        return out;

    std::filesystem::path cache_root;
    bool caching = opts_.use_cache;
    if (caching) {
        cache_root = opts_.cache_dir.empty() ? defaultCacheDir()
                                             : opts_.cache_dir;
        std::error_code ec;
        std::filesystem::create_directories(cache_root, ec);
        if (ec) {
            warn("sweep: cannot create cache directory '",
                 cache_root.string(), "' (", ec.message(),
                 "); caching disabled for this run");
            caching = false;
        }
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    Mutex mutex; // serializes telemetry + error capture
    std::exception_ptr error;

    auto work = [&]() {
        for (;;) {
            if (failed.load(std::memory_order_relaxed))
                return;
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            SweepPoint &pt = points[i];
            if (telemetry_.on_run_start) {
                MutexLock lock(mutex);
                telemetry_.on_run_start(pt, n);
            }
            try {
                const auto p0 = Clock::now();
                SweepOutcome &oc = out.outcomes_[i];
                const std::uint64_t digest =
                    sweepConfigDigest(pt.config, proto);
                std::filesystem::path entry;
                bool hit = false;
                if (caching) {
                    entry = cache_root / (hashHex(digest) + ".run");
                    hit = loadCacheEntry(entry, digest, oc.result,
                                         /*heal=*/true);
                }
                if (!hit) {
                    ExperimentRunner runner(proto);
                    oc.result = runner.runOne(pt.config.workload,
                                              pt.config.policy,
                                              pt.config);
                    if (caching)
                        storeCacheEntry(entry, digest, oc.result);
                }
                oc.cache_hit = hit;
                oc.wall_seconds =
                    std::chrono::duration<double>(Clock::now() - p0)
                        .count();
                oc.point = std::move(pt);
                if (telemetry_.on_run_done) {
                    MutexLock lock(mutex);
                    telemetry_.on_run_done(oc, n);
                }
            } catch (...) {
                MutexLock lock(mutex);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
        }
    };

    const unsigned jobs = effectiveJobs(n);
    if (jobs <= 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned j = 0; j < jobs; ++j)
            pool.emplace_back(work);
        for (auto &t : pool)
            t.join();
    }

    if (error)
        std::rethrow_exception(error);

    for (const auto &oc : out.outcomes_)
        out.cache_hits_ += oc.cache_hit ? 1 : 0;
    out.wall_seconds_ =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return out;
}

// --------------------------------------------------- digest + serialization

std::uint64_t
sweepConfigDigest(const SimConfig &cfg, const RunProtocol &proto)
{
    HashStream h;
    h.str(kSweepCacheSalt);
    h.u64(kNumStructures);
    h.u64(proto.warmup_cycles).u64(proto.measure_cycles);
    feed(h, cfg.workload);
    h.str(cfg.trace_path).b(cfg.trace_loop);
    feed(h, cfg.cpu);
    feed(h, cfg.memory);
    feed(h, cfg.power);
    feed(h, cfg.floorplan);
    h.f64(cfg.thermal.t_base).f64(cfg.thermal.t_emergency);
    feed(h, cfg.dtm);
    feed(h, cfg.policy);
    feed(h, cfg.multicore);
    return h.digest();
}

std::string
serializeRunResult(const RunResult &result)
{
    ByteWriter w;
    w.u8(kRunResultFormatVersion);
    w.str(result.benchmark);
    w.str(result.policy);
    w.u8(static_cast<std::uint8_t>(result.category));
    w.f64(result.ipc);
    w.f64(result.raw_ipc);
    w.f64(result.avg_power);
    w.f64(result.emergency_fraction);
    w.f64(result.stress_fraction);
    w.f64(result.max_temperature);
    w.f64(result.mean_duty);
    w.u64(result.structures.size());
    for (const auto &s : result.structures) {
        w.f64(s.avg_temp);
        w.f64(s.max_temp);
        w.f64(s.emergency_fraction);
        w.f64(s.stress_fraction);
        w.f64(s.avg_power);
    }
    w.u64(hashString(w.buffer()));
    return w.take();
}

RunResultDecodeStatus
deserializeRunResult(std::string_view buffer, RunResult &out)
{
    // Verify the trailing checksum before decoding any field: a flipped
    // bit anywhere yields Malformed, never a plausible wrong result.
    if (buffer.size() < 1 + 8)
        return RunResultDecodeStatus::Malformed;
    const std::string_view body = buffer.substr(0, buffer.size() - 8);
    ByteReader check(buffer.substr(buffer.size() - 8));
    if (check.u64() != hashString(body))
        return RunResultDecodeStatus::Malformed;
    ByteReader r(body);
    if (r.u8() != kRunResultFormatVersion)
        return r.ok() ? RunResultDecodeStatus::BadVersion
                      : RunResultDecodeStatus::Malformed;
    out.benchmark = r.str();
    out.policy = r.str();
    const std::uint8_t category = r.u8();
    if (category > static_cast<std::uint8_t>(ThermalCategory::Low))
        return RunResultDecodeStatus::Malformed;
    out.category = static_cast<ThermalCategory>(category);
    out.ipc = r.f64();
    out.raw_ipc = r.f64();
    out.avg_power = r.f64();
    out.emergency_fraction = r.f64();
    out.stress_fraction = r.f64();
    out.max_temperature = r.f64();
    out.mean_duty = r.f64();
    if (r.u64() != out.structures.size())
        return RunResultDecodeStatus::Malformed;
    for (auto &s : out.structures) {
        s.avg_temp = r.f64();
        s.max_temp = r.f64();
        s.emergency_fraction = r.f64();
        s.stress_fraction = r.f64();
        s.avg_power = r.f64();
    }
    return r.atEnd() ? RunResultDecodeStatus::Ok
                     : RunResultDecodeStatus::Malformed;
}

bool
sweepCacheLookup(const std::string &cache_dir, std::uint64_t digest,
                 RunResult &out)
{
    const std::filesystem::path entry =
        std::filesystem::path(cache_dir) / (hashHex(digest) + ".run");
    return loadCacheEntry(entry, digest, out);
}

CacheRecoveryStats
sweepCacheRecover(const std::string &cache_dir)
{
    CacheRecoveryStats stats;
    const std::filesystem::path root(cache_dir);
    std::error_code ec;
    if (!std::filesystem::is_directory(root, ec))
        return stats;
    for (const auto &it :
         std::filesystem::directory_iterator(root, ec)) {
        const std::filesystem::path &path = it.path();
        const std::string name = path.filename().string();
        // Leftover temp files are crashes mid-write; never valid.
        if (name.find(".tmp.") != std::string::npos) {
            std::filesystem::remove(path, ec);
            stats.tmp_removed++;
            continue;
        }
        if (path.extension() != ".run")
            continue;
        stats.scanned++;
        // The digest is the entry's own filename (content addressing),
        // so an entry can be validated without knowing its config.
        std::uint64_t digest = 0;
        if (!parseHexDigest(path.stem().string(), digest)) {
            quarantineCacheEntry(path);
            stats.quarantined++;
            continue;
        }
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buf;
        if (in)
            buf << in.rdbuf();
        RunResult ignored;
        if (!in || !validCacheBytes(buf.str(), digest, ignored)) {
            quarantineCacheEntry(path);
            stats.quarantined++;
        }
    }
    return stats;
}

} // namespace thermctl
