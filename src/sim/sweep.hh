/**
 * @file
 * The sweep engine: declarative experiment grids, executed in parallel
 * with a content-addressed on-disk result cache.
 *
 * The paper's evaluation is a large cartesian grid — 18 workloads x 7+
 * DTM policies x ablation variants — and every table/figure binary used
 * to walk its slice of that grid serially, re-simulating the shared
 * no-DTM characterization runs each time. SweepSpec describes a grid
 * declaratively; SweepEngine executes it on a fixed-size thread pool
 * and memoizes each point on disk keyed by a digest of the fully
 * resolved configuration, so results are reused across binaries and
 * across invocations.
 *
 * Guarantees:
 *  - Deterministic results: the result vector is ordered by grid
 *    position regardless of scheduling, and each point's simulation is
 *    a pure function of its resolved SimConfig + RunProtocol, so runs
 *    are bit-identical across jobs=1/jobs=N and cold/warm cache.
 *  - Stable identity: every point carries a human-readable key
 *    ("workload/policy[/variant]") and a per-point RNG seed derived
 *    from that key (folded into the workload stream when
 *    reseedWorkloads() is requested).
 *  - Safe caching: cache entries are addressed by
 *    sweepConfigDigest() — a canonical hash of every configuration
 *    field plus a code-version salt — and validated on load; corrupt
 *    or mismatched entries degrade to cache misses.
 *
 * See DESIGN.md §9 ("thermctl-sweep") for the grid model, seeding and
 * cache-key derivation, and the threading model.
 */

#ifndef THERMCTL_SIM_SWEEP_HH
#define THERMCTL_SIM_SWEEP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/experiment.hh"

namespace thermctl
{

/** One fully resolved grid point. */
struct SweepPoint
{
    /** Stable identity: "workload/policy" or "workload/policy/variant". */
    std::string key;

    /** Per-point RNG seed, derived deterministically from the key. */
    std::uint64_t seed = 0;

    /** Position in the grid (results are returned in this order). */
    std::size_t index = 0;

    /** The fully resolved configuration this point simulates. */
    SimConfig config;
};

/** A named configuration override forming the third grid axis. */
struct SweepVariant
{
    std::string name;
    std::function<void(SimConfig &)> apply;
};

/** @return the canonical point key for a workload/policy/variant triple. */
std::string sweepKey(std::string_view workload, std::string_view policy,
                     std::string_view variant = {});

/**
 * Declarative cartesian grid: workloads x policies x config variants
 * under one run protocol and base configuration. Empty axes default to
 * a single neutral element (the base workload, a no-DTM policy, the
 * identity variant), so a spec describes anything from a single run to
 * the paper's full evaluation grid.
 */
class SweepSpec
{
  public:
    SweepSpec &protocol(const RunProtocol &proto);
    SweepSpec &base(const SimConfig &cfg);

    SweepSpec &workload(const WorkloadProfile &profile);
    SweepSpec &workloads(const std::vector<WorkloadProfile> &profiles);

    /**
     * Add a policy column. The label defaults to the policy kind's name
     * and must be unique within the spec — pass an explicit label when
     * sweeping parameters of one kind (e.g. "PI@111.2").
     */
    SweepSpec &policy(const DtmPolicySettings &policy,
                      std::string label = {});
    SweepSpec &policies(const std::vector<DtmPolicySettings> &policies);

    /** Add a named configuration-override variant (third axis). */
    SweepSpec &variant(std::string name,
                       std::function<void(SimConfig &)> apply);

    /**
     * Fold each point's key-derived seed into its workload RNG stream.
     * Off by default so grids reproduce the per-profile seeds of the
     * paper tables; turn on for replicated / perturbed experiments.
     */
    SweepSpec &reseedWorkloads(bool on = true);

    const RunProtocol &runProtocol() const { return proto_; }
    const SimConfig &baseConfig() const { return base_; }

    /** @return number of grid points (product of non-empty axes). */
    std::size_t size() const;

    /**
     * Resolve the grid: apply variant overrides to the base config,
     * install workload and policy, derive keys and seeds. Order is
     * workloads (outer) x policies x variants (inner), independent of
     * execution scheduling. Duplicate keys are a fatal configuration
     * error.
     */
    std::vector<SweepPoint> points() const;

  private:
    RunProtocol proto_{};
    SimConfig base_{};
    std::vector<WorkloadProfile> workloads_;
    std::vector<std::pair<DtmPolicySettings, std::string>> policies_;
    std::vector<SweepVariant> variants_;
    bool reseed_ = false;
};

/** One executed grid point with its provenance and cost. */
struct SweepOutcome
{
    SweepPoint point;
    RunResult result;
    double wall_seconds = 0.0; ///< time to produce (≈0 on a cache hit)
    bool cache_hit = false;
};

/** Results of one engine invocation, ordered by grid position. */
class SweepResults
{
  public:
    const std::vector<SweepOutcome> &outcomes() const { return outcomes_; }

    /** @return just the RunResults, in grid order. */
    std::vector<RunResult> results() const;

    /** @return the result for a point key, or nullptr. */
    const RunResult *find(std::string_view key) const;

    /** @return the result for a point key; fatal() when absent. */
    const RunResult &at(std::string_view key) const;

    /** Shorthand: at(sweepKey(workload, policy, variant)). */
    const RunResult &at(std::string_view workload, std::string_view policy,
                        std::string_view variant = {}) const;

    std::size_t size() const { return outcomes_.size(); }
    std::size_t cacheHits() const { return cache_hits_; }
    std::size_t simulated() const { return outcomes_.size() - cache_hits_; }

    /** @return wall time of the whole engine invocation, seconds. */
    double wallSeconds() const { return wall_seconds_; }

  private:
    friend class SweepEngine;
    std::vector<SweepOutcome> outcomes_;
    std::size_t cache_hits_ = 0;
    double wall_seconds_ = 0.0;
};

/** Execution knobs of the engine. */
struct SweepOptions
{
    /** Worker threads; 0 = defaultJobs() (THERMCTL_JOBS or all cores). */
    unsigned jobs = 0;

    /** Enable the content-addressed on-disk result cache. */
    bool use_cache = false;

    /** Cache directory; empty = defaultCacheDir(). */
    std::string cache_dir;
};

/**
 * Progress callbacks, invoked serialized (never concurrently) from the
 * worker pool. on_run_start fires when a point begins resolving
 * (cache probe included); on_run_done fires with the outcome, its wall
 * time, and whether the cache served it.
 */
struct SweepTelemetry
{
    std::function<void(const SweepPoint &, std::size_t grid_size)>
        on_run_start;
    std::function<void(const SweepOutcome &, std::size_t grid_size)>
        on_run_done;
};

/**
 * Executes SweepSpecs on a fixed-size thread pool with optional
 * content-addressed result caching.
 */
class SweepEngine
{
  public:
    explicit SweepEngine(const SweepOptions &opts = {});

    void setTelemetry(SweepTelemetry telemetry);

    /** Execute every grid point; results ordered by grid position. */
    SweepResults run(const SweepSpec &spec) const;

    const SweepOptions &options() const { return opts_; }

    /** @return worker count used for a grid of the given size. */
    unsigned effectiveJobs(std::size_t grid_size) const;

    /** @return THERMCTL_JOBS when set (>=1), else hardware_concurrency. */
    static unsigned defaultJobs();

    /**
     * @return THERMCTL_CACHE_DIR when set, else XDG_CACHE_HOME/thermctl,
     * else ~/.cache/thermctl.
     */
    static std::string defaultCacheDir();

  private:
    SweepOptions opts_;
    SweepTelemetry telemetry_;
};

/**
 * Canonical digest of a fully resolved run: every SimConfig field, the
 * run protocol, and the cache schema/code-version salt. This is the
 * cache key — two runs share a digest iff the simulator cannot
 * distinguish their configurations.
 */
[[nodiscard]] std::uint64_t sweepConfigDigest(const SimConfig &cfg,
                                              const RunProtocol &proto);

/**
 * Format version written as the first byte of serializeRunResult().
 * Bump on any layout change so old payloads (cache entries, wire
 * frames) are rejected with BadVersion instead of mis-decoded.
 */
inline constexpr std::uint8_t kRunResultFormatVersion = 2;

/** Typed decode outcome: old/foreign payloads fail loudly, not quietly. */
enum class RunResultDecodeStatus
{
    Ok,
    BadVersion, ///< leading version byte != kRunResultFormatVersion
    Malformed,  ///< truncated, trailing bytes, or checksum mismatch
};

/**
 * Exact binary serialization of a RunResult (cache payload and wire
 * format): a format-version byte, the field payload, and a trailing
 * FNV-1a checksum over everything before it, so bit corruption anywhere
 * in the buffer is detected rather than decoded into plausible garbage.
 */
[[nodiscard]] std::string serializeRunResult(const RunResult &result);

/**
 * Inverse of serializeRunResult.
 * `out` is unspecified on any status other than Ok.
 */
[[nodiscard]] RunResultDecodeStatus
deserializeRunResult(std::string_view buffer, RunResult &out);

/**
 * Probe the on-disk result cache for a digest, validating the entry
 * (magic, stored digest, payload version + checksum).
 * @return true and fill `out` only for a fully valid entry.
 */
[[nodiscard]] bool sweepCacheLookup(const std::string &cache_dir,
                                    std::uint64_t digest, RunResult &out);

/** What a cache recovery sweep found (and removed). */
struct CacheRecoveryStats
{
    std::uint64_t scanned = 0;     ///< *.run entries examined
    std::uint64_t quarantined = 0; ///< invalid entries moved to *.corrupt
    std::uint64_t tmp_removed = 0; ///< abandoned *.tmp.* writer files
};

/**
 * Crash-recovery sweep over a cache directory: validates every entry
 * against the digest encoded in its filename (magic, stored digest,
 * payload version + checksum), quarantines invalid ones as *.corrupt,
 * and removes temp files abandoned by writers that died mid-publish.
 * Safe to run against a live cache — concurrent writers publish by
 * rename, and a valid entry is never touched.
 */
CacheRecoveryStats sweepCacheRecover(const std::string &cache_dir);

} // namespace thermctl

#endif // THERMCTL_SIM_SWEEP_HH
