#include "sim/simulator.hh"

#include <algorithm>

#include "check/invariants.hh"
#include "common/logging.hh"

namespace thermctl
{

namespace
{

/** Build the instruction source: a recorded trace or the generator. */
std::unique_ptr<InstructionStream>
makeStream(const SimConfig &cfg)
{
    if (!cfg.trace_path.empty()) {
        return std::make_unique<TraceReader>(cfg.trace_path,
                                             cfg.trace_loop);
    }
    return std::make_unique<SyntheticWorkload>(cfg.workload);
}

} // namespace

Simulator::Simulator(const SimConfig &cfg)
    : cfg_(cfg),
      workload_(makeStream(cfg)),
      memory_(cfg.memory),
      core_(cfg.cpu, *workload_, memory_),
      power_(cfg.power, cfg.cpu, cfg.memory),
      floorplan_(cfg.floorplan),
      thermal_(floorplan_, cfg.thermal, cfg.power.tech.cycleSeconds()),
      plant_(deriveDtmPlant(floorplan_, power_, cfg.dtm,
                            cfg.power.tech.cycleSeconds()))
{
    dtm_ = std::make_unique<DtmManager>(
        cfg.dtm, cfg.thermal,
        makeDtmPolicy(cfg.policy, plant_, cfg.dtm,
                      cfg.power.tech.cycleSeconds()));
}

void
Simulator::tick()
{
    // Apply the standing DTM command. A frequency change stalls the
    // pipeline while the clock resynchronizes (paper Section 2.1).
    const DtmCommand &cmd = dtm_->command();
    if (cmd.freq_scale != freq_scale_) {
        freq_scale_ = cmd.freq_scale;
        resync_until_ = now_ + cfg_.dtm.resync_cycles;
    }
    core_.setFetchWidthLimit(cmd.width_limit);
    core_.setSpeculationLimit(cmd.spec_limit);
    core_.setFetchEnabled(fetch_allowed_ && now_ >= resync_until_);
    core_.tick();

    last_power_ = power_.cyclePower(core_.activity());
    double dt_mult = 1.0;
    double v_ratio = 1.0;
    if (freq_scale_ < 1.0) {
        // Scaled clock: less switching energy per second (s * (V/V0)^2)
        // and a longer wall-clock duration per simulated cycle (1/s).
        const double alpha = cfg_.power.voltage_scaling_alpha;
        v_ratio = alpha + (1.0 - alpha) * freq_scale_;
        const double p_scale = freq_scale_ * v_ratio * v_ratio;
        for (double &w : last_power_.value)
            w *= p_scale;
        dt_mult = 1.0 / freq_scale_;
    }
    if (cfg_.power.leakage_enabled) {
        // Static power: temperature-dependent, frequency-independent,
        // scaling with the supply voltage (~V^2 in this model).
        const PowerVector leak =
            power_.leakagePower(thermal_.temperatures().value);
        for (std::size_t i = 0; i < kNumStructures; ++i)
            last_power_.value[i] += leak.value[i] * v_ratio * v_ratio;
    }
    THERMCTL_INVARIANT(check::verifyFinite(last_power_,
                                           "Simulator::tick"));
    if (dt_mult != 1.0)
        thermal_.stepScaled(last_power_, dt_mult);
    else
        thermal_.step(last_power_);
    measured_wall_seconds_ +=
        dt_mult * cfg_.power.tech.cycleSeconds();

    fetch_allowed_ = dtm_->tick(thermal_.temperatures(), now_);

    // ------------------------------------------------------- metrics
    ++stats_.cycles;
    const auto &temps = thermal_.temperatures();
    const Celsius t_emerg = cfg_.thermal.t_emergency;
    const Celsius t_stress = cfg_.thermal.stressLevel();
    for (std::size_t i = 0; i < kNumStructures; ++i) {
        stats_.power_sum.value[i] += last_power_.value[i];
        auto &s = stats_.structures[i];
        const Celsius t = temps.value[i];
        s.temp_sum += t;
        s.temp_max = std::max(s.temp_max, t);
        if (t > t_emerg)
            ++s.emergency_cycles;
        if (t > t_stress)
            ++s.stress_cycles;
    }

    ++now_;
    if (probe_interval_ && now_ % probe_interval_ == 0)
        probe_(*this, now_);
}

void
Simulator::run(std::uint64_t n)
{
    for (std::uint64_t i = 0; i < n; ++i)
        tick();
}

void
Simulator::warmUp(std::uint64_t cycles)
{
    const std::uint64_t half = cycles / 2;
    run(half);

    // Jump the thermal state to the steady state of the average power
    // observed so far (skipping the multi-RC heating transient), then
    // let the loop settle for the second half.
    PowerVector avg;
    for (std::size_t i = 0; i < kNumStructures; ++i) {
        avg.value[i] = stats_.cycles
            ? stats_.power_sum.value[i]
                  / static_cast<double>(stats_.cycles)
            : 0.0;
    }
    thermal_.warmStart(avg);

    run(cycles - half);
    resetMeasurement();
}

void
Simulator::resetMeasurement()
{
    stats_ = SimulatorStats{};
    core_.resetStats();
    dtm_->resetStats();
    measured_wall_seconds_ = 0.0;
}

double
Simulator::measuredPerformance() const
{
    if (measured_wall_seconds_ <= 0.0)
        return 0.0;
    return static_cast<double>(core_.stats().committed)
        / (measured_wall_seconds_ * cfg_.power.tech.freq_hz);
}

void
Simulator::setDtmPolicy(std::unique_ptr<DtmPolicy> policy)
{
    dtm_ = std::make_unique<DtmManager>(cfg_.dtm, cfg_.thermal,
                                        std::move(policy));
}

void
Simulator::setProbe(Probe probe, Cycle interval)
{
    probe_ = std::move(probe);
    probe_interval_ = probe_ ? interval : 0;
}

} // namespace thermctl
