#include "sim/experiment.hh"

#include <atomic>

#include "common/logging.hh"
#include "sim/sweep.hh"

namespace thermctl
{

namespace
{

std::atomic<MulticoreRunFn> g_multicore_backend{nullptr};

} // namespace

void
registerMulticoreBackend(MulticoreRunFn fn)
{
    g_multicore_backend.store(fn, std::memory_order_release);
}

bool
multicoreBackendRegistered()
{
    return g_multicore_backend.load(std::memory_order_acquire) != nullptr;
}

bool
needsMulticoreEngine(const SimConfig &cfg)
{
    return cfg.multicore.num_cores > 1
        || isMulticorePolicy(cfg.policy.kind);
}

ExperimentRunner::ExperimentRunner(const RunProtocol &protocol)
    : protocol_(protocol)
{
}

RunResult
ExperimentRunner::runOne(const WorkloadProfile &profile,
                         const DtmPolicySettings &policy,
                         const SimConfig &base) const
{
    SimConfig cfg = base;
    cfg.workload = profile;
    cfg.policy = policy;

    if (needsMulticoreEngine(cfg)) {
        const MulticoreRunFn fn =
            g_multicore_backend.load(std::memory_order_acquire);
        if (!fn) {
            fatal("multicore config (num_cores=", cfg.multicore.num_cores,
                  ", policy=", dtmPolicyKindName(cfg.policy.kind),
                  ") but no multicore backend registered; call "
                  "multicore::ensureBackendRegistered() at startup");
        }
        return fn(cfg, protocol_);
    }

    Simulator sim(cfg);
    sim.warmUp(protocol_.warmup_cycles);
    sim.run(protocol_.measure_cycles);

    RunResult result;
    result.benchmark = profile.name;
    result.policy = dtmPolicyKindName(policy.kind);
    result.category = profile.category;
    // Wall-time-normalized performance: equals IPC except under
    // frequency scaling, which must be charged for its slower clock.
    result.ipc = sim.measuredPerformance();
    result.raw_ipc = sim.measuredIpc();
    result.avg_power = sim.stats().avgPower();

    const auto &dtm_stats = sim.dtm().stats();
    result.emergency_fraction = dtm_stats.emergencyFraction();
    result.stress_fraction = dtm_stats.stressFraction();
    result.max_temperature = dtm_stats.max_temperature;
    result.mean_duty = dtm_stats.samples
        ? dtm_stats.duty_sum / static_cast<double>(dtm_stats.samples)
        : 1.0;

    const auto &stats = sim.stats();
    for (std::size_t i = 0; i < kNumStructures; ++i) {
        const auto id = static_cast<StructureId>(i);
        auto &det = result.structures[i];
        const auto &s = stats.structures[i];
        det.avg_temp = stats.avgTemperature(id);
        det.max_temp = s.temp_max;
        det.avg_power = stats.avgStructurePower(id);
        const double cycles = static_cast<double>(stats.cycles);
        det.emergency_fraction = cycles
            ? static_cast<double>(s.emergency_cycles) / cycles
            : 0.0;
        det.stress_fraction = cycles
            ? static_cast<double>(s.stress_cycles) / cycles
            : 0.0;
    }
    return result;
}

std::vector<RunResult>
ExperimentRunner::runAll(const std::vector<WorkloadProfile> &profiles,
                         const DtmPolicySettings &policy,
                         const SimConfig &base) const
{
    if (profiles.empty())
        return {};
    SweepSpec spec;
    spec.protocol(protocol_).base(base).workloads(profiles).policy(
        policy);
    return SweepEngine().run(spec).results();
}

ThermalCategory
classifyThermalBehaviour(const RunResult &run)
{
    // Paper Table 5: extreme programs actually enter emergency; high
    // ones spend essentially all their time within a degree of it
    // (the paper's "as much as 98%"); medium ones a substantial
    // fraction; low ones only occasionally.
    if (run.emergency_fraction > 0.001)
        return ThermalCategory::Extreme;
    if (run.stress_fraction >= 0.97)
        return ThermalCategory::High;
    if (run.stress_fraction >= 0.40)
        return ThermalCategory::Medium;
    return ThermalCategory::Low;
}

} // namespace thermctl
