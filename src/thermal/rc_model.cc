#include "thermal/rc_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace thermctl
{

// --------------------------------------------------------- SimplifiedRCModel

SimplifiedRCModel::SimplifiedRCModel(const Floorplan &floorplan,
                                     const ThermalConfig &cfg,
                                     double dt_seconds)
    : floorplan_(floorplan), cfg_(cfg), dt_(dt_seconds)
{
    if (dt_seconds <= 0.0)
        fatal("SimplifiedRCModel: dt must be positive");
    for (StructureId id : kAllStructures) {
        const auto &blk = floorplan.block(id);
        const std::size_t i = static_cast<std::size_t>(id);
        if (blk.capacitance <= 0.0 || blk.resistance <= 0.0)
            fatal("SimplifiedRCModel: non-positive R or C for block ",
                  structureName(id));
        inv_c_[i] = dt_ / blk.capacitance;
        inv_rc_[i] = dt_ / (blk.resistance * blk.capacitance);
        if (inv_rc_[i] >= 1.0)
            fatal("SimplifiedRCModel: dt too large for block time "
                  "constant (forward Euler unstable)");
        temps_.value[i] = cfg.t_base;
    }
}

void
SimplifiedRCModel::step(const PowerVector &power)
{
    // Paper Eq. 5: T += dt/C * P - dt/(RC) * (T - T_base)
    for (std::size_t i = 0; i < kNumStructures; ++i) {
        temps_.value[i] += power.value[i] * inv_c_[i]
            - (temps_.value[i] - cfg_.t_base) * inv_rc_[i];
    }
}

void
SimplifiedRCModel::stepScaled(const PowerVector &power, double dt_mult)
{
    if (dt_mult <= 0.0)
        panic("SimplifiedRCModel::stepScaled: dt_mult must be positive");
    for (std::size_t i = 0; i < kNumStructures; ++i) {
        temps_.value[i] += dt_mult
            * (power.value[i] * inv_c_[i]
               - (temps_.value[i] - cfg_.t_base) * inv_rc_[i]);
    }
}

void
SimplifiedRCModel::stepExact(const PowerVector &power, std::uint64_t cycles)
{
    const double span = dt_ * static_cast<double>(cycles);
    for (StructureId id : kAllStructures) {
        const std::size_t i = static_cast<std::size_t>(id);
        const auto &blk = floorplan_.block(id);
        const double t_ss = cfg_.t_base
            + power.value[i] * blk.resistance;
        const double decay = std::exp(-span / blk.rc());
        temps_.value[i] = t_ss + (temps_.value[i] - t_ss) * decay;
    }
}

void
SimplifiedRCModel::warmStart(const PowerVector &power)
{
    for (StructureId id : kAllStructures) {
        const std::size_t i = static_cast<std::size_t>(id);
        temps_.value[i] = steadyState(id, power.value[i]);
    }
}

void
SimplifiedRCModel::setUniform(Celsius t)
{
    temps_.value.fill(t);
}

Celsius
SimplifiedRCModel::steadyState(StructureId id, Watts p) const
{
    return cfg_.t_base + p * floorplan_.block(id).resistance;
}

// --------------------------------------------------------------- FullRCModel

FullRCModel::FullRCModel(const Floorplan &floorplan,
                         const ThermalConfig &cfg, double dt_seconds)
    : floorplan_(floorplan), cfg_(cfg), dt_(dt_seconds),
      t_sink_(cfg.t_base)
{
    if (dt_seconds <= 0.0)
        fatal("FullRCModel: dt must be positive");
    for (StructureId id : kAllStructures) {
        const std::size_t i = static_cast<std::size_t>(id);
        temps_.value[i] = cfg.t_base;
        conductance_[i][kNumStructures] =
            1.0 / floorplan.block(id).resistance;
    }
    for (const auto &tan : floorplan.tangential()) {
        const std::size_t a = static_cast<std::size_t>(tan.a);
        const std::size_t b = static_cast<std::size_t>(tan.b);
        const double g = 1.0 / tan.resistance;
        conductance_[a][b] += g;
        conductance_[b][a] += g;
    }
    sink_to_ambient_g_ = 1.0 / floorplan.config().chip_resistance;
}

void
FullRCModel::step(const PowerVector &power)
{
    std::array<double, kNumStructures> flow{};
    double sink_flow = 0.0;

    for (std::size_t i = 0; i < kNumStructures; ++i) {
        double q = power.value[i];
        // Tangential exchange.
        for (std::size_t j = 0; j < kNumStructures; ++j) {
            if (conductance_[i][j] != 0.0) {
                q -= conductance_[i][j]
                    * (temps_.value[i] - temps_.value[j]);
            }
        }
        // Normal path to the heatsink node.
        const double to_sink = conductance_[i][kNumStructures]
            * (temps_.value[i] - t_sink_);
        q -= to_sink;
        sink_flow += to_sink;
        flow[i] = q;
    }

    for (StructureId id : kAllStructures) {
        const std::size_t i = static_cast<std::size_t>(id);
        temps_.value[i] += dt_ * flow[i]
            / floorplan_.block(id).capacitance;
    }

    sink_flow -= sink_to_ambient_g_
        * (t_sink_ - floorplan_.config().ambient);
    t_sink_ += dt_ * sink_flow / floorplan_.config().chip_capacitance;
}

void
FullRCModel::stepSpan(const PowerVector &power, std::uint64_t cycles)
{
    // Forward Euler stays stable as long as dt is well below the
    // smallest node time constant; sub-step in chunks of at most 1 us.
    const double max_chunk_s = 1e-6;
    const std::uint64_t chunk_cycles = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(max_chunk_s / dt_));
    std::uint64_t remaining = cycles;
    const double saved_dt = dt_;
    while (remaining > 0) {
        const std::uint64_t n = std::min(remaining, chunk_cycles);
        dt_ = saved_dt * static_cast<double>(n);
        step(power);
        dt_ = saved_dt;
        remaining -= n;
    }
}

void
FullRCModel::setUniform(Celsius t)
{
    temps_.value.fill(t);
    t_sink_ = t;
}

void
FullRCModel::setTemperatures(const TemperatureVector &temps, Celsius sink)
{
    temps_ = temps;
    t_sink_ = sink;
}

// ------------------------------------------------------------ ChipLevelModel

ChipLevelModel::ChipLevelModel(const FloorplanConfig &cfg, Celsius initial,
                               double dt_seconds)
    : r_(cfg.chip_resistance), c_(cfg.chip_capacitance),
      ambient_(cfg.ambient), temp_(initial), dt_(dt_seconds)
{
    if (r_ <= 0.0 || c_ <= 0.0 || dt_seconds <= 0.0)
        fatal("ChipLevelModel: R, C and dt must be positive");
}

void
ChipLevelModel::step(Watts total_power)
{
    temp_ += dt_ * total_power / c_ - dt_ * (temp_ - ambient_) / (r_ * c_);
}

void
ChipLevelModel::stepExact(Watts total_power, std::uint64_t cycles)
{
    const double span = dt_ * static_cast<double>(cycles);
    const double t_ss = ambient_ + total_power * r_;
    temp_ = t_ss + (temp_ - t_ss) * std::exp(-span / (r_ * c_));
}

} // namespace thermctl
