#include "thermal/rc_model.hh"

#include <algorithm>
#include <cmath>

#include "check/invariants.hh"
#include "common/logging.hh"

namespace thermctl
{

// --------------------------------------------------------- SimplifiedRCModel

SimplifiedRCModel::SimplifiedRCModel(const Floorplan &floorplan,
                                     const ThermalConfig &cfg, Seconds dt)
    : floorplan_(floorplan), cfg_(cfg), dt_(dt)
{
    if (dt.value() <= 0.0)
        fatal("SimplifiedRCModel: dt must be positive");
    for (StructureId id : kAllStructures) {
        const auto &blk = floorplan.block(id);
        const std::size_t i = static_cast<std::size_t>(id);
        if (blk.capacitance.value() <= 0.0 || blk.resistance.value() <= 0.0)
            fatal("SimplifiedRCModel: non-positive R or C for block ",
                  structureName(id));
        inv_c_[i] = dt_ / blk.capacitance;
        inv_rc_[i] = dt_ / blk.rc();
        if (inv_rc_[i] >= 1.0)
            fatal("SimplifiedRCModel: dt too large for block time "
                  "constant (forward Euler unstable)");
        max_inv_rc_ = std::max(max_inv_rc_, inv_rc_[i]);
        temps_.value[i] = cfg.t_base;
    }
}

void
SimplifiedRCModel::step(const PowerVector &power)
{
    THERMCTL_INVARIANT(check::verifyFinite(power, "SimplifiedRCModel::step"));
    // Paper Eq. 5: T += dt/C * P - dt/(RC) * (T - T_base)
    for (std::size_t i = 0; i < kNumStructures; ++i) {
        temps_.value[i] += power.value[i] * inv_c_[i]
            - (temps_.value[i] - cfg_.t_base) * inv_rc_[i];
    }
    THERMCTL_INVARIANT(check::verifyFinite(temps_,
                                           "SimplifiedRCModel::step"));
}

void
SimplifiedRCModel::stepScaled(const PowerVector &power, double dt_mult)
{
    if (dt_mult <= 0.0)
        panic("SimplifiedRCModel::stepScaled: dt_mult must be positive");
    THERMCTL_INVARIANT(check::verifyEulerStable(
        max_inv_rc_ * dt_mult, 1.0, "SimplifiedRCModel::stepScaled",
        "stiffest block"));
    THERMCTL_INVARIANT(check::verifyFinite(
        power, "SimplifiedRCModel::stepScaled"));
    for (std::size_t i = 0; i < kNumStructures; ++i) {
        temps_.value[i] += dt_mult
            * (power.value[i] * inv_c_[i]
               - (temps_.value[i] - cfg_.t_base) * inv_rc_[i]);
    }
    THERMCTL_INVARIANT(check::verifyFinite(
        temps_, "SimplifiedRCModel::stepScaled"));
}

void
SimplifiedRCModel::stepExact(const PowerVector &power, std::uint64_t cycles)
{
    THERMCTL_INVARIANT(check::verifyFinite(power,
                                           "SimplifiedRCModel::stepExact"));
    const double span = dt_.value() * static_cast<double>(cycles);
    for (StructureId id : kAllStructures) {
        const std::size_t i = static_cast<std::size_t>(id);
        const auto &blk = floorplan_.block(id);
        const double t_ss = cfg_.t_base
            + power.value[i] * blk.resistance.value();
        const double decay = std::exp(-span / blk.rc().value());
        temps_.value[i] = t_ss + (temps_.value[i] - t_ss) * decay;
    }
    THERMCTL_INVARIANT(check::verifyFinite(temps_,
                                           "SimplifiedRCModel::stepExact"));
}

void
SimplifiedRCModel::warmStart(const PowerVector &power)
{
    for (StructureId id : kAllStructures) {
        const std::size_t i = static_cast<std::size_t>(id);
        temps_.value[i] = steadyState(id, power.value[i]);
    }
    THERMCTL_INVARIANT(check::verifyFinite(temps_,
                                           "SimplifiedRCModel::warmStart"));
}

void
SimplifiedRCModel::setUniform(Celsius t)
{
    temps_.value.fill(t);
}

Celsius
SimplifiedRCModel::steadyState(StructureId id, Watts p) const
{
    // dT = P * R: the Table 1 duality algebra, statically checked.
    return cfg_.t_base + p * floorplan_.block(id).resistance;
}

// --------------------------------------------------------------- FullRCModel

FullRCModel::FullRCModel(const Floorplan &floorplan,
                         const ThermalConfig &cfg, Seconds dt)
    : floorplan_(floorplan), cfg_(cfg), dt_(dt), t_sink_(cfg.t_base)
{
    if (dt.value() <= 0.0)
        fatal("FullRCModel: dt must be positive");
    for (StructureId id : kAllStructures) {
        const std::size_t i = static_cast<std::size_t>(id);
        temps_.value[i] = cfg.t_base;
        conductance_[i][kNumStructures] =
            1.0 / floorplan.block(id).resistance;
    }
    for (const auto &tan : floorplan.tangential()) {
        const std::size_t a = static_cast<std::size_t>(tan.a);
        const std::size_t b = static_cast<std::size_t>(tan.b);
        const double g = 1.0 / tan.resistance;
        conductance_[a][b] += g;
        conductance_[b][a] += g;
    }
    sink_to_ambient_g_ = 1.0 / floorplan.config().chip_resistance;

    // Forward-Euler stability guard at construction: each node's total
    // conductance over its capacitance bounds the integration rate; Eq. 5
    // diverges once dt exceeds 2 C / G_total (we insist on the stricter
    // non-oscillating dt < C / G_total).
    double sink_g_total = sink_to_ambient_g_;
    for (StructureId id : kAllStructures) {
        const std::size_t i = static_cast<std::size_t>(id);
        double g_total = 0.0;
        for (std::size_t j = 0; j <= kNumStructures; ++j)
            g_total += conductance_[i][j];
        sink_g_total += conductance_[i][kNumStructures];
        const double rate = g_total / floorplan.block(id).capacitance;
        max_g_over_c_ = std::max(max_g_over_c_, rate);
        if (dt.value() * rate >= 1.0)
            fatal("FullRCModel: dt too large for block ",
                  structureName(id), " (forward Euler unstable)");
    }
    const double sink_rate =
        sink_g_total / floorplan.config().chip_capacitance;
    max_g_over_c_ = std::max(max_g_over_c_, sink_rate);
    if (dt.value() * sink_rate >= 1.0)
        fatal("FullRCModel: dt too large for the heatsink node "
              "(forward Euler unstable)");
}

void
FullRCModel::step(const PowerVector &power)
{
    THERMCTL_INVARIANT(check::verifyFinite(power, "FullRCModel::step"));
    std::array<double, kNumStructures> flow{};
    double sink_flow = 0.0;

    for (std::size_t i = 0; i < kNumStructures; ++i) {
        double q = power.value[i];
        // Tangential exchange.
        for (std::size_t j = 0; j < kNumStructures; ++j) {
            if (conductance_[i][j] != 0.0) {
                q -= conductance_[i][j]
                    * (temps_.value[i] - temps_.value[j]);
            }
        }
        // Normal path to the heatsink node.
        const double to_sink = conductance_[i][kNumStructures]
            * (temps_.value[i] - t_sink_);
        q -= to_sink;
        sink_flow += to_sink;
        flow[i] = q;
    }

    for (StructureId id : kAllStructures) {
        const std::size_t i = static_cast<std::size_t>(id);
        temps_.value[i] += dt_ * flow[i]
            / floorplan_.block(id).capacitance;
    }

    sink_flow -= sink_to_ambient_g_
        * (t_sink_ - floorplan_.config().ambient);
    t_sink_ += dt_ * sink_flow / floorplan_.config().chip_capacitance;
    THERMCTL_INVARIANT(check::verifyFinite(temps_, "FullRCModel::step"));
}

void
FullRCModel::stepSpan(const PowerVector &power, std::uint64_t cycles)
{
    // Forward Euler stays stable as long as dt is well below the
    // smallest node time constant; sub-step in chunks of at most 1 us.
    const double max_chunk_s = 1e-6;
    const std::uint64_t chunk_cycles = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(max_chunk_s / dt_));
    std::uint64_t remaining = cycles;
    const Seconds saved_dt = dt_;

#if THERMCTL_INVARIANTS_ENABLED
    // Energy-balance audit: forward Euler with pre-step temperatures is
    // exactly conservative, so stored delta must equal input minus
    // ambient loss to rounding error over the whole span.
    check::EnergyAudit audit;
    const auto storedEnergy = [this]() -> Joules {
        Joules e = 0.0;
        for (StructureId id : kAllStructures) {
            e += floorplan_.block(id).capacitance
                * Kelvin(temps_[id].value());
        }
        e += floorplan_.config().chip_capacitance
            * Kelvin(t_sink_.value());
        return e;
    };
    audit.setStoredBefore(storedEnergy());
    const Watts p_total = power.total();
#endif

    while (remaining > 0) {
        const std::uint64_t n = std::min(remaining, chunk_cycles);
        const Seconds chunk = saved_dt * static_cast<double>(n);
        THERMCTL_INVARIANT(check::verifyEulerStable(
            chunk.value() * max_g_over_c_, 1.0, "FullRCModel::stepSpan",
            "stiffest node"));
#if THERMCTL_INVARIANTS_ENABLED
        audit.addInput(p_total * chunk);
        audit.addAmbientLoss(
            Watts(sink_to_ambient_g_
                  * (t_sink_ - floorplan_.config().ambient))
            * chunk);
#endif
        dt_ = chunk;
        step(power);
        dt_ = saved_dt;
        remaining -= n;
    }

#if THERMCTL_INVARIANTS_ENABLED
    audit.setStoredAfter(storedEnergy());
    audit.verify("FullRCModel::stepSpan");
#endif
}

void
FullRCModel::setUniform(Celsius t)
{
    temps_.value.fill(t);
    t_sink_ = t;
}

void
FullRCModel::setTemperatures(const TemperatureVector &temps, Celsius sink)
{
    temps_ = temps;
    t_sink_ = sink;
}

// ------------------------------------------------------------ ChipLevelModel

ChipLevelModel::ChipLevelModel(const FloorplanConfig &cfg, Celsius initial,
                               Seconds dt)
    : r_(cfg.chip_resistance), c_(cfg.chip_capacitance),
      ambient_(cfg.ambient), temp_(initial), dt_(dt)
{
    if (r_.value() <= 0.0 || c_.value() <= 0.0 || dt.value() <= 0.0)
        fatal("ChipLevelModel: R, C and dt must be positive");
}

void
ChipLevelModel::step(Watts total_power)
{
    // Fully typed Eq. 5: (s * W) / (J/K) = K and (s * K) / s = K.
    temp_ += dt_ * total_power / c_
        - (dt_ * (temp_ - ambient_)) / timeConstant();
    THERMCTL_INVARIANT(check::verifyFinite(temp_.value(), "temperature",
                                           "ChipLevelModel::step"));
}

void
ChipLevelModel::stepExact(Watts total_power, std::uint64_t cycles)
{
    const double span = dt_.value() * static_cast<double>(cycles);
    const Celsius t_ss = ambient_ + total_power * r_;
    temp_ = t_ss
        + (temp_ - t_ss) * std::exp(-span / timeConstant().value());
    THERMCTL_INVARIANT(check::verifyFinite(temp_.value(), "temperature",
                                           "ChipLevelModel::stepExact"));
}

} // namespace thermctl
