/**
 * @file
 * Lumped thermal-RC models (paper Section 4).
 *
 * SimplifiedRCModel is the paper's Figure 3C network: every block has an
 * independent RC path to a quasi-constant base (heatsink) temperature,
 * integrated per cycle with the paper's Eq. 5 difference equation, or
 * advanced exactly over multi-cycle spans with the closed-form
 * exponential solution (the two agree to first order in dt/RC; the exact
 * form is used to accelerate long idle spans and as a test oracle).
 *
 * FullRCModel is the Figure 3B network: tangential block-to-block
 * resistances plus an explicit heatsink node with its own (much larger)
 * RC to ambient. It exists to validate the simplification the paper
 * argues for (bench/ablation_thermal_model).
 *
 * ChipLevelModel tracks the single chip-wide RC (paper Table 3 last row)
 * whose ~seconds time constant is the reason chip-wide temperature cannot
 * react to — or even see — localized heating.
 */

#ifndef THERMCTL_THERMAL_RC_MODEL_HH
#define THERMCTL_THERMAL_RC_MODEL_HH

#include <array>

#include "common/types.hh"
#include "power/structures.hh"
#include "thermal/floorplan.hh"

namespace thermctl
{

/** Thermal thresholds and environment (reconstructed; see DESIGN.md). */
struct ThermalConfig
{
    /** Quasi-static heatsink/base temperature under load. */
    Celsius t_base = 108.0;

    /** Thermal-emergency threshold (structure damage above this). */
    Celsius t_emergency = 111.8;

    /** "Thermal stress" level used by the paper's Tables 4/7/8. */
    Celsius
    stressLevel() const
    {
        return t_emergency - 1.0;
    }
};

/** Per-block temperatures. */
struct TemperatureVector
{
    std::array<Celsius, kNumStructures> value{};

    Celsius &operator[](StructureId id)
    {
        return value[static_cast<std::size_t>(id)];
    }

    Celsius operator[](StructureId id) const
    {
        return value[static_cast<std::size_t>(id)];
    }

    /** @return the hottest block among the paper's 7 hot-spot blocks. */
    Celsius
    maxHotspot() const
    {
        Celsius m = value[0];
        for (std::size_t i = 1; i < kNumHotspotStructures; ++i)
            m = std::max(m, value[i]);
        return m;
    }

    /** @return the id of the hottest hot-spot block. */
    StructureId
    hottest() const
    {
        std::size_t best = 0;
        for (std::size_t i = 1; i < kNumHotspotStructures; ++i)
            if (value[i] > value[best])
                best = i;
        return static_cast<StructureId>(best);
    }
};

/** The paper's simplified per-block RC network (Figure 3C). */
class SimplifiedRCModel
{
  public:
    SimplifiedRCModel(const Floorplan &floorplan, const ThermalConfig &cfg,
                      Seconds dt);

    /**
     * Advance one cycle with the given per-block power (paper Eq. 5,
     * forward Euler).
     */
    void step(const PowerVector &power);

    /**
     * Advance one cycle whose wall-clock duration is dt * dt_mult —
     * used under frequency scaling, where a slower clock stretches the
     * real time each simulated cycle covers.
     */
    void stepScaled(const PowerVector &power, double dt_mult);

    /**
     * Advance `cycles` cycles exactly, assuming the given power is
     * constant over the span (closed-form exponential update).
     */
    void stepExact(const PowerVector &power, std::uint64_t cycles);

    /** Jump every block to its steady state under the given power. */
    void warmStart(const PowerVector &power);

    /** Set every block to the given temperature. */
    void setUniform(Celsius t);

    const TemperatureVector &temperatures() const { return temps_; }

    /** Steady-state temperature of a block at the given power. */
    Celsius steadyState(StructureId id, Watts p) const;

    const ThermalConfig &config() const { return cfg_; }
    const Floorplan &floorplan() const { return floorplan_; }
    Seconds dt() const { return dt_; }

  private:
    const Floorplan &floorplan_;
    ThermalConfig cfg_;
    Seconds dt_;
    TemperatureVector temps_;
    // Cached per-block coefficients.
    std::array<double, kNumStructures> inv_c_{};  ///< dt / C
    std::array<double, kNumStructures> inv_rc_{}; ///< dt / (R*C)
    double max_inv_rc_ = 0.0; ///< stiffest block's dt / (R*C)
};

/** The paper's detailed RC network (Figure 3B) with tangential paths. */
class FullRCModel
{
  public:
    FullRCModel(const Floorplan &floorplan, const ThermalConfig &cfg,
                Seconds dt);

    /** Advance one cycle (forward Euler over the full network). */
    void step(const PowerVector &power);

    /**
     * Advance `cycles` cycles under constant power, internally
     * sub-stepping at a numerically safe interval.
     */
    void stepSpan(const PowerVector &power, std::uint64_t cycles);

    /** Set every block and the heatsink node to the given temperature. */
    void setUniform(Celsius t);

    /** Copy block temperatures (e.g. from a simplified-model state). */
    void setTemperatures(const TemperatureVector &temps, Celsius sink);

    const TemperatureVector &temperatures() const { return temps_; }
    Celsius heatsinkTemperature() const { return t_sink_; }

  private:
    const Floorplan &floorplan_;
    ThermalConfig cfg_;
    Seconds dt_;
    TemperatureVector temps_;
    Celsius t_sink_;
    /** Conductances: [i][j] between blocks, [i][N] block to sink. */
    std::array<std::array<double, kNumStructures + 1>,
               kNumStructures>
        conductance_{};
    double sink_to_ambient_g_ = 0.0;
    double max_g_over_c_ = 0.0; ///< stiffest node's total G / C, 1/s
};

/** Chip-wide single-RC model (paper Table 3 "chip" row). */
class ChipLevelModel
{
  public:
    ChipLevelModel(const FloorplanConfig &cfg, Celsius initial,
                   Seconds dt);

    /** Advance one cycle with the given total chip power. */
    void step(Watts total_power);

    /** Advance many cycles under constant power (exact exponential). */
    void stepExact(Watts total_power, std::uint64_t cycles);

    Celsius temperature() const { return temp_; }

    /** @return the chip-level time constant R*C. */
    Seconds timeConstant() const { return r_ * c_; }

  private:
    KelvinPerWatt r_;
    JoulePerKelvin c_;
    Celsius ambient_;
    Celsius temp_;
    Seconds dt_;
};

} // namespace thermctl

#endif // THERMCTL_THERMAL_RC_MODEL_HH
