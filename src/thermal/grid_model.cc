#include "thermal/grid_model.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "thermal/silicon.hh"

namespace thermctl
{

GridThermalModel::GridThermalModel(const Floorplan &floorplan,
                                   const ThermalConfig &cfg,
                                   double dt_seconds, double cell_mm)
    : floorplan_(floorplan), cfg_(cfg), dt_(dt_seconds),
      cell_mm_(cell_mm)
{
    if (dt_seconds <= 0.0)
        fatal("GridThermalModel: dt must be positive");
    const double die_mm = 10.0;
    const double cells = die_mm / cell_mm;
    if (cell_mm <= 0.0
        || std::abs(cells - std::round(cells)) > 1e-9) {
        fatal("GridThermalModel: cell size must divide the 10 mm die, "
              "got ", cell_mm);
    }
    n_ = static_cast<std::uint32_t>(std::lround(cells));

    const std::size_t total = static_cast<std::size_t>(n_) * n_;
    temps_.assign(total, cfg.t_base);
    owner_.assign(total, StructureId::RestOfChip);
    inv_c_.assign(total, 0.0);
    g_vert_.assign(total, 0.0);
    flow_scratch_.assign(total, 0.0);

    const auto &fcfg = floorplan.config();
    const double rho = silicon::thermalResistivity(fcfg.reference_temp);
    const double c_v =
        silicon::volumetricHeatCapacity(fcfg.reference_temp);
    const double cell_area_m2 = cell_mm * cell_mm * 1e-6;
    const double cell_c = c_v * cell_area_m2 * fcfg.active_layer_m;

    // Lateral conduction between adjacent cells: a slab path of length
    // cell_mm and cross-section cell_mm x die thickness.
    g_lat_ = fcfg.die_thickness_m / rho;

    // Assign owners and per-cell vertical paths. The vertical R uses the
    // owning block's spreading factor so a uniformly heated isolated
    // block matches the lumped model's steady state.
    std::array<std::uint32_t, kNumStructures> cells_of_block{};
    for (std::uint32_t iy = 0; iy < n_; ++iy) {
        for (std::uint32_t ix = 0; ix < n_; ++ix) {
            const double cx = (ix + 0.5) * cell_mm;
            const double cy = (iy + 0.5) * cell_mm;
            StructureId owner = StructureId::RestOfChip;
            for (StructureId id : kAllStructures) {
                const auto &r = floorplan.rect(id);
                if (cx >= r.x_mm && cx < r.x_mm + r.w_mm
                    && cy >= r.y_mm && cy < r.y_mm + r.h_mm) {
                    owner = id;
                    break;
                }
            }
            const std::size_t i = index(ix, iy);
            owner_[i] = owner;
            ++cells_of_block[static_cast<std::size_t>(owner)];
            inv_c_[i] = dt_ / cell_c;
            const double k =
                fcfg.k_spread[static_cast<std::size_t>(owner)];
            const double r_vert =
                k * rho * fcfg.die_thickness_m / cell_area_m2;
            g_vert_[i] = 1.0 / r_vert;
        }
    }
    for (std::size_t b = 0; b < kNumStructures; ++b) {
        if (cells_of_block[b] == 0)
            fatal("GridThermalModel: block ",
                  structureName(static_cast<StructureId>(b)),
                  " has no cells at resolution ", cell_mm, " mm");
        block_cell_share_[b] = 1.0 / cells_of_block[b];
    }

    // Euler stability: dt_sub < C / G_total. Keep a 4x safety margin.
    double min_tau = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < total; ++i) {
        const double g_total = g_vert_[i] + 4.0 * g_lat_;
        min_tau = std::min(min_tau, cell_c / g_total);
    }
    max_substep_cycles_ = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(0.25 * min_tau / dt_));
}

void
GridThermalModel::step(const PowerVector &power)
{
    const std::size_t total = temps_.size();
    for (std::size_t i = 0; i < total; ++i) {
        const std::size_t b = static_cast<std::size_t>(owner_[i]);
        double q = power.value[b] * block_cell_share_[b];
        q -= g_vert_[i] * (temps_[i] - cfg_.t_base);
        flow_scratch_[i] = q;
    }
    // Lateral exchange.
    for (std::uint32_t iy = 0; iy < n_; ++iy) {
        for (std::uint32_t ix = 0; ix < n_; ++ix) {
            const std::size_t i = index(ix, iy);
            if (ix + 1 < n_) {
                const std::size_t j = index(ix + 1, iy);
                const double f = g_lat_ * (temps_[i] - temps_[j]);
                flow_scratch_[i] -= f;
                flow_scratch_[j] += f;
            }
            if (iy + 1 < n_) {
                const std::size_t j = index(ix, iy + 1);
                const double f = g_lat_ * (temps_[i] - temps_[j]);
                flow_scratch_[i] -= f;
                flow_scratch_[j] += f;
            }
        }
    }
    for (std::size_t i = 0; i < total; ++i)
        temps_[i] += inv_c_[i] * flow_scratch_[i];
}

void
GridThermalModel::stepSpan(const PowerVector &power, std::uint64_t cycles)
{
    const double saved_dt = dt_;
    std::uint64_t remaining = cycles;
    while (remaining > 0) {
        const std::uint64_t chunk =
            std::min(remaining, max_substep_cycles_);
        // Temporarily stretch the step.
        const double mult = static_cast<double>(chunk);
        for (auto &v : inv_c_)
            v *= mult;
        step(power);
        for (auto &v : inv_c_)
            v /= mult;
        remaining -= chunk;
    }
    dt_ = saved_dt;
}

void
GridThermalModel::setUniform(Celsius t)
{
    std::fill(temps_.begin(), temps_.end(), t);
}

Celsius
GridThermalModel::cellAt(double x_mm, double y_mm) const
{
    auto ix = static_cast<std::uint32_t>(
        std::clamp(x_mm / cell_mm_, 0.0, n_ - 1.0));
    auto iy = static_cast<std::uint32_t>(
        std::clamp(y_mm / cell_mm_, 0.0, n_ - 1.0));
    return temps_[index(ix, iy)];
}

Celsius
GridThermalModel::blockMax(StructureId id) const
{
    Celsius best = std::numeric_limits<double>::lowest();
    for (std::size_t i = 0; i < temps_.size(); ++i)
        if (owner_[i] == id)
            best = std::max(best, temps_[i]);
    return best;
}

Celsius
GridThermalModel::blockMean(StructureId id) const
{
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < temps_.size(); ++i) {
        if (owner_[i] == id) {
            sum += temps_[i];
            ++count;
        }
    }
    return count ? Celsius(sum / static_cast<double>(count)) : cfg_.t_base;
}

Celsius
GridThermalModel::blockGradient(StructureId id) const
{
    Celsius lo = std::numeric_limits<double>::max(),
            hi = std::numeric_limits<double>::lowest();
    for (std::size_t i = 0; i < temps_.size(); ++i) {
        if (owner_[i] == id) {
            lo = std::min(lo, temps_[i]);
            hi = std::max(hi, temps_[i]);
        }
    }
    return hi >= lo ? hi - lo : Kelvin(0.0);
}

Celsius
GridThermalModel::dieMax() const
{
    return *std::max_element(temps_.begin(), temps_.end());
}

} // namespace thermctl
