/**
 * @file
 * Boxcar power-average temperature proxies (paper Section 6).
 *
 * Prior DTM work used a moving average of power over the last W cycles as
 * a stand-in for temperature. The paper evaluates two variants against
 * its RC model:
 *  - per-structure: trigger when avg power exceeds the power that would
 *    sustain the trigger temperature, P_trig = (T_trig - T_base) / R;
 *  - chip-wide: trigger when total average power exceeds a fixed
 *    wattage threshold (Brooks & Martonosi's style; the paper uses 47 W
 *    for its configuration).
 */

#ifndef THERMCTL_THERMAL_BOXCAR_HH
#define THERMCTL_THERMAL_BOXCAR_HH

#include <vector>

#include "common/stats.hh"
#include "power/structures.hh"
#include "thermal/floorplan.hh"
#include "thermal/rc_model.hh"

namespace thermctl
{

/** Per-structure boxcar power proxy. */
class StructureBoxcarProxy
{
  public:
    /**
     * @param floorplan provides per-block thermal R
     * @param cfg thermal thresholds (trigger = emergency level)
     * @param window boxcar length in cycles (paper: 10 K and 500 K)
     */
    StructureBoxcarProxy(const Floorplan &floorplan,
                         const ThermalConfig &cfg, std::size_t window,
                         Celsius trigger_temp);

    /** Fold one cycle of per-structure power into the windows. */
    void add(const PowerVector &power);

    /** @return true if the proxy considers this block triggered. */
    bool triggered(StructureId id) const;

    /** @return the equivalent trigger power for a block, Watts. */
    Watts triggerPower(StructureId id) const;

    /** @return current windowed average power of a block. */
    Watts averagePower(StructureId id) const;

    std::size_t window() const;

  private:
    std::vector<BoxcarAverage> averages_;
    std::array<Watts, kNumStructures> trigger_power_{};
};

/** Chip-wide boxcar power proxy with a fixed wattage trigger. */
class ChipBoxcarProxy
{
  public:
    ChipBoxcarProxy(std::size_t window, Watts trigger_watts);

    /** Fold one cycle of total chip power into the window. */
    void add(Watts total_power);

    bool triggered() const;
    Watts averagePower() const { return avg_.average(); }
    Watts triggerWatts() const { return trigger_watts_; }
    std::size_t window() const { return avg_.window(); }

  private:
    BoxcarAverage avg_;
    Watts trigger_watts_;
};

/**
 * Accumulates the paper's Table 9/10 comparison between a proxy and the
 * RC reference model: cycles where the reference sees an emergency but
 * the proxy does not ("missed"), and cycles where the proxy triggers
 * without a reference emergency ("false triggers").
 */
struct ProxyComparison
{
    std::uint64_t cycles = 0;
    std::uint64_t reference_emergencies = 0;
    std::uint64_t proxy_triggers = 0;
    std::uint64_t missed = 0;  ///< reference hot, proxy silent
    std::uint64_t false_triggers = 0; ///< proxy hot, reference fine

    /** Record one cycle of observations. */
    void
    record(bool reference_hot, bool proxy_hot)
    {
        ++cycles;
        if (reference_hot)
            ++reference_emergencies;
        if (proxy_hot)
            ++proxy_triggers;
        if (reference_hot && !proxy_hot)
            ++missed;
        if (proxy_hot && !reference_hot)
            ++false_triggers;
    }

    /** @return fraction of reference emergencies the proxy missed. */
    double
    missRate() const
    {
        return reference_emergencies
            ? static_cast<double>(missed)
                  / static_cast<double>(reference_emergencies)
            : 0.0;
    }

    /** @return false triggers as a fraction of all cycles. */
    double
    falseTriggerRate() const
    {
        return cycles ? static_cast<double>(false_triggers)
                          / static_cast<double>(cycles)
                      : 0.0;
    }
};

} // namespace thermctl

#endif // THERMCTL_THERMAL_BOXCAR_HH
