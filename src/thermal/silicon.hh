/**
 * @file
 * Material properties of silicon used to derive block thermal R and C
 * (paper Section 4.3): thermal resistivity and volumetric heat capacity,
 * including their weak temperature dependence ("the variation is small").
 */

#ifndef THERMCTL_THERMAL_SILICON_HH
#define THERMCTL_THERMAL_SILICON_HH

#include <cmath>

#include "common/types.hh"

namespace thermctl::silicon
{

/**
 * Thermal resistivity of silicon, (m*K)/W.
 *
 * Bulk silicon conductivity is ~148 W/(m*K) at 27 C and falls roughly as
 * T^-1.3 (absolute); around the 100-110 C operating points the paper
 * targets this gives ~0.0095-0.011 (m*K)/W, i.e. the paper's approximate
 * 0.01.
 */
inline double
thermalResistivity(Celsius t_c)
{
    const double t_k = t_c + 273.15;
    const double k300 = 148.0; // W/(m*K) at 300 K
    const double k = k300 * std::pow(300.0 / t_k, 1.3);
    return 1.0 / k;
}

/**
 * Volumetric heat capacity of silicon, J/(m^3*K): density 2330 kg/m^3 x
 * specific heat ~0.75 J/(g*K) near operating temperature, weakly
 * increasing with temperature.
 */
inline double
volumetricHeatCapacity(Celsius t_c)
{
    const double t_k = t_c + 273.15;
    // Linearized around 300-400 K; ~1.66e6 at 300 K rising to ~1.80e6.
    return 1.66e6 + 1.4e3 * (t_k - 300.0);
}

} // namespace thermctl::silicon

#endif // THERMCTL_THERMAL_SILICON_HH
