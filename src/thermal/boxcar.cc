#include "thermal/boxcar.hh"

#include "common/logging.hh"

namespace thermctl
{

StructureBoxcarProxy::StructureBoxcarProxy(const Floorplan &floorplan,
                                           const ThermalConfig &cfg,
                                           std::size_t window,
                                           Celsius trigger_temp)
{
    if (window == 0)
        fatal("StructureBoxcarProxy: window must be positive");
    averages_.reserve(kNumStructures);
    for (StructureId id : kAllStructures) {
        averages_.emplace_back(window);
        // The average power that would hold the block at trigger_temp:
        // P_trig = (T_trig - T_base) / R.
        trigger_power_[static_cast<std::size_t>(id)] =
            (trigger_temp - cfg.t_base)
            / floorplan.block(id).resistance;
    }
}

void
StructureBoxcarProxy::add(const PowerVector &power)
{
    for (std::size_t i = 0; i < kNumStructures; ++i)
        averages_[i].add(power.value[i]);
}

bool
StructureBoxcarProxy::triggered(StructureId id) const
{
    const std::size_t i = static_cast<std::size_t>(id);
    return averages_[i].average() > trigger_power_[i];
}

Watts
StructureBoxcarProxy::triggerPower(StructureId id) const
{
    return trigger_power_[static_cast<std::size_t>(id)];
}

Watts
StructureBoxcarProxy::averagePower(StructureId id) const
{
    return averages_[static_cast<std::size_t>(id)].average();
}

std::size_t
StructureBoxcarProxy::window() const
{
    return averages_.front().window();
}

ChipBoxcarProxy::ChipBoxcarProxy(std::size_t window, Watts trigger_watts)
    : avg_(window), trigger_watts_(trigger_watts)
{
    if (trigger_watts <= 0.0)
        fatal("ChipBoxcarProxy: trigger wattage must be positive");
}

void
ChipBoxcarProxy::add(Watts total_power)
{
    avg_.add(total_power);
}

bool
ChipBoxcarProxy::triggered() const
{
    return avg_.average() > trigger_watts_;
}

} // namespace thermctl
