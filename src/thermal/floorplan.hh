/**
 * @file
 * Die floorplan and per-block thermal parameters (paper Table 3 and
 * Section 4.3).
 *
 * Each structure is a rectangle on the die. Block thermal capacitance is
 * C = c_si * A * t_active, block normal resistance (to the heat spreader
 * / heatsink) is R = k_spread * rho_si * t_die / A, and tangential
 * resistances between adjacent blocks follow the paper's spreading
 * formula. k_spread is a per-structure constriction/interface factor: a
 * small hot block's heat must spread laterally before crossing the die,
 * so its effective resistance is a multiple of the one-dimensional
 * rho*t/A value — the same reason the paper's Table 3 R column is far
 * above rho*t/A for every block. Values are calibrated so sustained
 * worst-case activity produces the local temperature rises the paper
 * reports (up to ~10 degrees above the heatsink base).
 */

#ifndef THERMCTL_THERMAL_FLOORPLAN_HH
#define THERMCTL_THERMAL_FLOORPLAN_HH

#include <array>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"
#include "power/structures.hh"

namespace thermctl
{

/** A placed rectangular block (millimetres). */
struct BlockRect
{
    double x_mm = 0.0;
    double y_mm = 0.0;
    double w_mm = 0.0;
    double h_mm = 0.0;

    double areaMm2() const { return w_mm * h_mm; }
};

/** Thermal parameters of one block. */
struct ThermalBlockParams
{
    StructureId id = StructureId::Lsq;
    double area_m2 = 0.0;
    KelvinPerWatt resistance = 0.0;  ///< block to heatsink (normal path)
    JoulePerKelvin capacitance = 0.0;
    /** @return thermal time constant R*C (the Table 1 algebra in use). */
    Seconds rc() const { return resistance * capacitance; }
};

/** A tangential (block-to-block) thermal resistance. */
struct TangentialResistance
{
    StructureId a;
    StructureId b;
    KelvinPerWatt resistance;
};

/** Floorplan / package configuration. */
struct FloorplanConfig
{
    double die_thickness_m = 100e-6;  ///< thinned wafer (paper: 0.1 mm)
    /**
     * Thickness of the silicon layer that heats on the fast (tens of
     * microseconds) time scale. The full die participates on slower
     * scales; using the active layer for C gives the paper's
     * tens-to-hundreds-of-microseconds block time constants.
     */
    double active_layer_m = 5e-6;

    /** Reference temperature for evaluating material properties. */
    Celsius reference_temp = 105.0;

    /**
     * Per-structure spreading/constriction factors (see file comment).
     * Order: Lsq, Window, Regfile, Bpred, DCache, IntExec, FpExec, Rest.
     */
    std::array<double, kNumStructures> k_spread{
        14.3, 15.9, 9.3, 16.5, 16.7, 10.0, 8.5, 8.0};

    // Chip-level package path (paper Table 3 last row).
    KelvinPerWatt chip_resistance = 0.34;  ///< die+heatsink to ambient
    JoulePerKelvin chip_capacitance = 60.0; ///< heatsink mass
    Celsius ambient = 27.0;

    /**
     * Optional HotSpot-style .flp file to load block placement from
     * (lines of `name width_m height_m left_x_m bottom_y_m`; one line
     * per structure, all eight required). Empty = the built-in layout.
     */
    std::string flp_path{};
};

/**
 * The die floorplan: block placement, derived thermal R/C per block, and
 * tangential resistances between neighbours.
 */
class Floorplan
{
  public:
    explicit Floorplan(const FloorplanConfig &cfg = {});

    const ThermalBlockParams &block(StructureId id) const;
    const std::array<ThermalBlockParams, kNumStructures> &blocks() const
    {
        return blocks_;
    }

    const BlockRect &rect(StructureId id) const;

    /** Tangential resistances between blocks that share an edge. */
    const std::vector<TangentialResistance> &tangential() const
    {
        return tangential_;
    }

    const FloorplanConfig &config() const { return cfg_; }

    /** Total die area in mm^2. */
    double dieAreaMm2() const;

    /**
     * Write the placement in HotSpot .flp format
     * (`name width_m height_m left_x_m bottom_y_m`).
     */
    void writeFlp(std::ostream &os) const;

  private:
    /** Parse a HotSpot .flp file into rects_ (fatal on bad input). */
    void loadFlp(const std::string &path);

    FloorplanConfig cfg_;
    std::array<BlockRect, kNumStructures> rects_;
    std::array<ThermalBlockParams, kNumStructures> blocks_;
    std::vector<TangentialResistance> tangential_;
};

} // namespace thermctl

#endif // THERMCTL_THERMAL_FLOORPLAN_HH
