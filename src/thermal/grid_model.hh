/**
 * @file
 * Grid-refined thermal model — the finer-granularity direction the
 * paper names as future work (and which matured into HotSpot).
 *
 * The die is discretized into square cells. Each cell has a vertical RC
 * path to the heatsink base (calibrated per owning block exactly like
 * the lumped model, so the two agree for a uniformly heated isolated
 * block) plus lateral conduction to its four neighbours through the
 * silicon slab. Block power is spread uniformly over the block's cells.
 *
 * Compared to the paper's block-lumped Fig. 3C network this resolves
 * within-block gradients and cross-block-boundary heating, at a cost of
 * O(cells) per step — suitable for analysis benches, not the per-cycle
 * main loop (see bench/ablation_granularity).
 */

#ifndef THERMCTL_THERMAL_GRID_MODEL_HH
#define THERMCTL_THERMAL_GRID_MODEL_HH

#include <cstdint>
#include <vector>

#include "power/structures.hh"
#include "thermal/floorplan.hh"
#include "thermal/rc_model.hh"

namespace thermctl
{

/** Fine-grained cell-based thermal model of the die. */
class GridThermalModel
{
  public:
    /**
     * @param floorplan block placement and calibration
     * @param cfg thermal environment
     * @param dt_seconds base timestep (one clock cycle)
     * @param cell_mm cell edge length; the 10 mm die must divide evenly
     */
    GridThermalModel(const Floorplan &floorplan, const ThermalConfig &cfg,
                     double dt_seconds, double cell_mm = 0.5);

    /** Advance one cycle with the given per-block power. */
    void step(const PowerVector &power);

    /**
     * Advance `cycles` cycles under constant power, sub-stepping at a
     * numerically safe interval.
     */
    void stepSpan(const PowerVector &power, std::uint64_t cycles);

    /** Set every cell to the given temperature. */
    void setUniform(Celsius t);

    /** Temperature of the cell containing die position (x, y) in mm. */
    Celsius cellAt(double x_mm, double y_mm) const;

    /** Hottest cell within a block. */
    Celsius blockMax(StructureId id) const;

    /** Area-weighted mean temperature of a block. */
    Celsius blockMean(StructureId id) const;

    /** Max minus min cell temperature within a block. */
    Celsius blockGradient(StructureId id) const;

    /** Hottest cell anywhere on the die. */
    Celsius dieMax() const;

    std::uint32_t cellsPerSide() const { return n_; }

  private:
    std::size_t index(std::uint32_t ix, std::uint32_t iy) const
    {
        return static_cast<std::size_t>(iy) * n_ + ix;
    }

    const Floorplan &floorplan_;
    ThermalConfig cfg_;
    double dt_;
    double cell_mm_;
    std::uint32_t n_ = 0;

    std::vector<Celsius> temps_;
    /** Owning block of each cell. */
    std::vector<StructureId> owner_;
    /** dt / C per cell. */
    std::vector<double> inv_c_;
    /** Vertical conductance to the base, W/K, per cell. */
    std::vector<double> g_vert_;
    /** Lateral conductance between adjacent cells, W/K. */
    double g_lat_ = 0.0;
    /** Power share per cell of each block (1 / cells_in_block). */
    std::array<double, kNumStructures> block_cell_share_{};
    /** Largest stable Euler sub-step, in cycles. */
    std::uint64_t max_substep_cycles_ = 1;
    std::vector<double> flow_scratch_;
};

} // namespace thermctl

#endif // THERMCTL_THERMAL_GRID_MODEL_HH
