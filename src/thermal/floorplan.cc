#include "thermal/floorplan.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "thermal/silicon.hh"

namespace thermctl
{

namespace
{

/** Shared-edge length between two rectangles in millimetres (0 if not
 *  adjacent). */
double
sharedEdgeMm(const BlockRect &a, const BlockRect &b)
{
    constexpr double eps = 1e-9;
    // Vertical adjacency: a's right edge touches b's left edge (or vice
    // versa); overlap measured along y.
    const bool touch_x =
        std::abs((a.x_mm + a.w_mm) - b.x_mm) < eps
        || std::abs((b.x_mm + b.w_mm) - a.x_mm) < eps;
    if (touch_x) {
        const double lo = std::max(a.y_mm, b.y_mm);
        const double hi = std::min(a.y_mm + a.h_mm, b.y_mm + b.h_mm);
        if (hi - lo > eps)
            return hi - lo;
    }
    const bool touch_y =
        std::abs((a.y_mm + a.h_mm) - b.y_mm) < eps
        || std::abs((b.y_mm + b.h_mm) - a.y_mm) < eps;
    if (touch_y) {
        const double lo = std::max(a.x_mm, b.x_mm);
        const double hi = std::min(a.x_mm + a.w_mm, b.x_mm + b.w_mm);
        if (hi - lo > eps)
            return hi - lo;
    }
    return 0.0;
}

} // namespace

Floorplan::Floorplan(const FloorplanConfig &cfg) : cfg_(cfg)
{
    if (cfg.die_thickness_m <= 0.0 || cfg.active_layer_m <= 0.0)
        fatal("Floorplan: thicknesses must be positive");
    if (cfg.active_layer_m > cfg.die_thickness_m)
        fatal("Floorplan: active layer cannot exceed die thickness");

    if (!cfg.flp_path.empty()) {
        loadFlp(cfg.flp_path);
    } else {
        // Fixed 10 x 10 mm die with the paper's Table 3 block areas:
        // LSQ 5, window 9, regfile 2.5, bpred 3.5, D-cache 10,
        // IntExec 5, FPExec 5 mm^2; the remaining 60 mm^2 is the
        // RestOfChip aggregate.
        auto set = [&](StructureId id, double x, double y, double w,
                       double h) {
            rects_[static_cast<std::size_t>(id)] =
                BlockRect{.x_mm = x, .y_mm = y, .w_mm = w, .h_mm = h};
        };
        set(StructureId::DCache, 0.0, 0.0, 5.0, 2.0);   // 10 mm^2
        set(StructureId::Lsq, 5.0, 0.0, 2.5, 2.0);      // 5 mm^2
        set(StructureId::IntExec, 7.5, 0.0, 2.5, 2.0);  // 5 mm^2
        set(StructureId::Window, 0.0, 2.0, 4.5, 2.0);   // 9 mm^2
        set(StructureId::Regfile, 4.5, 2.0, 1.25, 2.0); // 2.5 mm^2
        set(StructureId::FpExec, 5.75, 2.0, 2.5, 2.0);  // 5 mm^2
        set(StructureId::Bpred, 8.25, 2.0, 1.75, 2.0);  // 3.5 mm^2
        set(StructureId::RestOfChip, 0.0, 4.0, 10.0, 6.0); // 60 mm^2
    }

    const Celsius t_ref = cfg.reference_temp;
    const double rho = silicon::thermalResistivity(t_ref);
    const double c_v = silicon::volumetricHeatCapacity(t_ref);

    for (StructureId id : kAllStructures) {
        const std::size_t i = static_cast<std::size_t>(id);
        const double area_m2 = units::mm2ToM2(rects_[i].areaMm2());
        ThermalBlockParams &blk = blocks_[i];
        blk.id = id;
        blk.area_m2 = area_m2;
        // C = c_si * A * t_active  (paper Section 4.3)
        blk.capacitance = c_v * area_m2 * cfg.active_layer_m;
        // R = k_spread * rho_si * t_die / A  (see header comment)
        blk.resistance =
            cfg.k_spread[i] * rho * cfg.die_thickness_m / area_m2;
    }

    // Tangential resistances between blocks sharing an edge: lateral
    // conduction through the active silicon cross-section. The path
    // length is approximated by half the two block widths; the section is
    // shared_edge * die thickness. As the paper observes, these come out
    // orders of magnitude above the normal resistances.
    for (std::size_t i = 0; i < kNumStructures; ++i) {
        for (std::size_t j = i + 1; j < kNumStructures; ++j) {
            const double edge_mm = sharedEdgeMm(rects_[i], rects_[j]);
            if (edge_mm <= 0.0)
                continue;
            const double li = std::sqrt(rects_[i].areaMm2()) * 1e-3 / 2;
            const double lj = std::sqrt(rects_[j].areaMm2()) * 1e-3 / 2;
            const double section =
                edge_mm * 1e-3 * cfg.die_thickness_m;
            const double r_tan = rho * (li + lj) / section;
            tangential_.push_back({static_cast<StructureId>(i),
                                   static_cast<StructureId>(j), r_tan});
        }
    }
}

const ThermalBlockParams &
Floorplan::block(StructureId id) const
{
    return blocks_[static_cast<std::size_t>(id)];
}

const BlockRect &
Floorplan::rect(StructureId id) const
{
    return rects_[static_cast<std::size_t>(id)];
}

double
Floorplan::dieAreaMm2() const
{
    double total = 0.0;
    for (const auto &r : rects_)
        total += r.areaMm2();
    return total;
}

void
Floorplan::loadFlp(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open floorplan file: ", path);

    std::array<bool, kNumStructures> seen{};
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        // HotSpot comments and blank lines.
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        std::istringstream ls(line);
        std::string name;
        double w_m = 0, h_m = 0, x_m = 0, y_m = 0;
        if (!(ls >> name >> w_m >> h_m >> x_m >> y_m))
            fatal(path, ":", line_no, ": expected `name width height "
                  "left-x bottom-y` (meters)");
        bool matched = false;
        for (StructureId id : kAllStructures) {
            if (name == structureName(id)) {
                if (w_m <= 0.0 || h_m <= 0.0)
                    fatal(path, ":", line_no,
                          ": block dimensions must be positive");
                rects_[static_cast<std::size_t>(id)] =
                    BlockRect{.x_mm = x_m * 1e3, .y_mm = y_m * 1e3,
                              .w_mm = w_m * 1e3, .h_mm = h_m * 1e3};
                seen[static_cast<std::size_t>(id)] = true;
                matched = true;
                break;
            }
        }
        if (!matched)
            fatal(path, ":", line_no, ": unknown block '", name, "'");
    }
    for (StructureId id : kAllStructures) {
        if (!seen[static_cast<std::size_t>(id)])
            fatal(path, ": missing block '", structureName(id), "'");
    }
}

void
Floorplan::writeFlp(std::ostream &os) const
{
    os << "# ThermalCtl floorplan (HotSpot .flp format)\n"
       << "# name\twidth_m\theight_m\tleft_x_m\tbottom_y_m\n";
    for (StructureId id : kAllStructures) {
        const auto &r = rects_[static_cast<std::size_t>(id)];
        os << structureName(id) << '\t' << r.w_mm * 1e-3 << '\t'
           << r.h_mm * 1e-3 << '\t' << r.x_mm * 1e-3 << '\t'
           << r.y_mm * 1e-3 << '\n';
    }
}

} // namespace thermctl
