/**
 * @file
 * CACTI-lite energy models for SRAM arrays and CAMs, in the spirit of
 * Wattch's capacitance estimation: energy per access is derived from the
 * array geometry (rows, columns, ports) and per-element capacitances,
 * scaled by Vdd and the bitline swing.
 */

#ifndef THERMCTL_POWER_ARRAY_HH
#define THERMCTL_POWER_ARRAY_HH

#include <cstdint>

#include "power/technology.hh"

namespace thermctl
{

/** Geometry of a RAM array structure. */
struct ArrayGeometry
{
    std::uint32_t rows = 0;       ///< rows of the *active* subarray
    std::uint32_t cols_bits = 0;  ///< columns of the *active* subarray
    std::uint32_t read_ports = 1;
    std::uint32_t write_ports = 1;

    /**
     * Total bits of the whole structure when it is larger than one
     * subarray (CACTI-style banking: only one subarray fires per access,
     * plus H-tree routing across the full footprint). 0 means the
     * structure is a single subarray.
     */
    std::uint64_t total_bits = 0;
};

/** Geometry of a CAM (associative search) structure. */
struct CamGeometry
{
    std::uint32_t entries = 0;
    std::uint32_t tag_bits = 0;
    std::uint32_t search_ports = 1;
    std::uint32_t write_ports = 1;
};

/**
 * Energy model of an SRAM array.
 *
 * Per read access: row decode + wordline swing + bitline swing on every
 * column + sense amps. Per write: full-rail bitline swing. Multi-ported
 * cells grow linearly in both dimensions (port pitch), increasing wire
 * capacitance exactly as in CACTI.
 */
class ArrayEnergyModel
{
  public:
    ArrayEnergyModel(const ArrayGeometry &geom, const Technology &tech);

    /** @return energy of one read access in Joules. */
    double readEnergy() const { return read_energy_j_; }

    /** @return energy of one write access in Joules. */
    double writeEnergy() const { return write_energy_j_; }

    /**
     * @return maximum energy in one cycle (all read and write ports
     * firing), in Joules.
     */
    double peakCycleEnergy() const;

    const ArrayGeometry &geometry() const { return geom_; }

  private:
    ArrayGeometry geom_;
    double read_energy_j_ = 0.0;
    double write_energy_j_ = 0.0;
};

/**
 * Energy model of a CAM: a search drives the tag lines across every entry
 * and every entry's comparator evaluates; a write behaves like a small
 * RAM write.
 */
class CamEnergyModel
{
  public:
    CamEnergyModel(const CamGeometry &geom, const Technology &tech);

    /** @return energy of one associative search in Joules. */
    double searchEnergy() const { return search_energy_j_; }

    /** @return energy of one entry write in Joules. */
    double writeEnergy() const { return write_energy_j_; }

    /** @return maximum energy in one cycle, all ports firing. */
    double peakCycleEnergy() const;

    const CamGeometry &geometry() const { return geom_; }

  private:
    CamGeometry geom_;
    double search_energy_j_ = 0.0;
    double write_energy_j_ = 0.0;
};

} // namespace thermctl

#endif // THERMCTL_POWER_ARRAY_HH
