/**
 * @file
 * The Wattch-style per-structure power model.
 *
 * Per-cycle structure energies are computed from the core's activity
 * counters and CACTI-lite access energies, under a configurable
 * conditional-clocking style (Wattch's cc0-cc3). The default is the
 * affine cc3 style used in the paper's methodology: power scales linearly
 * with port usage and idle structures still dissipate 10% of peak
 * (clocking overhead that gating cannot remove).
 */

#ifndef THERMCTL_POWER_MODEL_HH
#define THERMCTL_POWER_MODEL_HH

#include "cache/hierarchy.hh"
#include "cpu/activity.hh"
#include "cpu/config.hh"
#include "power/array.hh"
#include "power/structures.hh"
#include "power/technology.hh"

namespace thermctl
{

/** Wattch conditional-clocking styles. */
enum class ClockGatingStyle
{
    Cc0, ///< no gating: every structure at peak every cycle
    Cc1, ///< on/off: peak when accessed at all, zero when idle
    Cc2, ///< linear with port usage, zero when idle
    Cc3, ///< linear with port usage, idle floor of 10% of peak
};

/** @return printable gating-style name. */
const char *clockGatingStyleName(ClockGatingStyle style);

/** Power-model configuration. */
struct PowerConfig
{
    Technology tech{};
    ClockGatingStyle gating = ClockGatingStyle::Cc3;

    /** Idle floor fraction for Cc3. */
    double idle_fraction = 0.10;

    // Execution-unit per-operation energies (Joules). Values chosen so
    // unit peak powers at 1.5 GHz land in the range published for
    // 0.18 um high-performance designs.
    double e_int_alu_op = 1.2e-9;
    double e_int_mult_op = 3.0e-9;
    double e_fp_alu_op = 1.8e-9;
    double e_fp_mult_op = 2.2e-9;

    /** Constant clock/misc power charged to RestOfChip every cycle. */
    Watts rest_base_watts = 9.0;

    /** Per-event energies for RestOfChip activity (decode/rename etc). */
    double e_decode_op = 1.0e-9;

    /**
     * Voltage-vs-frequency model for V/f scaling DTM: at clock scale s,
     * Vdd scales to (alpha + (1 - alpha) * s) of nominal. Per-cycle
     * switching energy then scales with (V/V0)^2 and power additionally
     * with s.
     */
    double voltage_scaling_alpha = 0.45;

    // ---- temperature-dependent leakage (extension; default off) ----
    /**
     * Enable subthreshold-leakage modeling. Leakage was negligible at
     * the paper's 0.18 um node (the paper only cites Wong et al.'s
     * leakage-cancellation circuit in passing) but is the dominant
     * thermal feedback at later nodes: leakage grows exponentially with
     * temperature, so hot structures leak more and heat further.
     */
    bool leakage_enabled = false;

    /** Leakage at the reference temperature, as a fraction of peak. */
    double leakage_fraction_at_ref = 0.05;

    /** Reference temperature for the leakage fraction. */
    Celsius leakage_ref_temp = 85.0;

    /**
     * Exponential temperature sensitivity: leakage doubles every
     * `leakage_doubling_c` degrees (typical silicon: 8-12 C).
     */
    Kelvin leakage_doubling_c = 10.0;

    /**
     * Per-structure calibration multipliers applied to the CACTI-lite
     * access energies (order: Lsq, Window, Regfile, Bpred, DCache,
     * IntExec, FpExec, RestOfChip). They absorb circuit details the
     * geometry model does not capture (forwarding networks, selection
     * trees, aggressive clocking) and are chosen so per-structure peak
     * powers match the magnitudes published for 0.18 um designs; see
     * bench/table3_thermal_params.
     */
    std::array<double, kNumStructures> structure_scale{
        5.0, 1.0, 1.0, 1.0, 0.7, 0.8, 1.0, 1.0};
};

/**
 * Computes per-structure power, cycle by cycle, from core activity.
 */
class PowerModel
{
  public:
    PowerModel(const PowerConfig &cfg, const CpuConfig &cpu,
               const MemoryHierarchyConfig &mem);

    /**
     * @return Watts dissipated by each structure during a cycle with the
     * given activity.
     */
    PowerVector cyclePower(const CpuActivity &act) const;

    /**
     * Per-structure leakage power at the given temperatures, Watts.
     * Zero for every structure unless leakage_enabled. Exponential in
     * temperature:
     *   P_leak(T) = frac_ref * P_peak * 2^((T - T_ref) / doubling)
     */
    PowerVector leakagePower(
        const std::array<Celsius, kNumStructures> &temps_c) const;

    /** @return per-structure peak power (all ports active), Watts. */
    const PowerVector &peak() const { return peak_; }

    const PowerConfig &config() const { return cfg_; }

  private:
    /** Per-structure active energy for one cycle, Joules. */
    double activeEnergy(StructureId id, const CpuActivity &act) const;

    /** Apply the gating style to an active-energy value. */
    double gate(double active_j, double peak_j) const;

    PowerConfig cfg_;
    CpuConfig cpu_;
    MemoryHierarchyConfig mem_;

    // Access-energy building blocks (Joules per event).
    double e_lsq_search_ = 0.0;
    double e_lsq_insert_ = 0.0;
    double e_window_dispatch_ = 0.0;
    double e_window_issue_ = 0.0;
    double e_window_wakeup_ = 0.0;
    double e_regfile_read_ = 0.0;
    double e_regfile_write_ = 0.0;
    double e_bpred_lookup_ = 0.0;
    double e_bpred_update_ = 0.0;
    double e_dcache_access_ = 0.0;
    double e_icache_access_ = 0.0;
    double e_l2_access_ = 0.0;

    /** Peak one-cycle energy per structure, Joules. */
    std::array<double, kNumStructures> peak_energy_{};
    PowerVector peak_;
};

} // namespace thermctl

#endif // THERMCTL_POWER_MODEL_HH
