/**
 * @file
 * Process-technology parameters for the power model.
 *
 * The paper's experiments use Wattch 1.02 configured for a 0.18 um
 * process, Vdd = 2.0 V, and a 1.5 GHz clock ("roughly representative of
 * values in contemporary processors" in 2001). The capacitance constants
 * below are of the same flavour as Wattch's CACTI-derived values, stated
 * directly at 0.18 um; kEnergyCalibration absorbs the layout factors
 * (precharge style, cell sizing, drivers) that a full CACTI run would
 * model, and is chosen so per-structure peak powers land in the range the
 * paper's Table 3 reports.
 */

#ifndef THERMCTL_POWER_TECHNOLOGY_HH
#define THERMCTL_POWER_TECHNOLOGY_HH

#include "common/types.hh"

namespace thermctl
{

/** Electrical/process parameters (0.18 um generation defaults). */
struct Technology
{
    double feature_um = 0.18;   ///< drawn feature size
    double vdd = 2.0;           ///< supply voltage (V)
    double freq_hz = 1.5e9;     ///< clock frequency

    // Per-element capacitances at 0.18 um.
    double c_gate_ff = 0.30;    ///< pass-gate load per cell on a wordline
    double c_drain_ff = 0.17;   ///< drain load per cell on a bitline
    double c_wire_ff_per_um = 0.23; ///< metal wire capacitance
    double cell_width_um = 2.0;  ///< SRAM cell width (per bit, 1 port)
    double cell_height_um = 1.6; ///< SRAM cell height (per bit, 1 port)
    /** Extra cell pitch per additional port (wire + transistor). */
    double port_pitch_um = 0.6;

    double sense_amp_energy_fj = 80.0; ///< per column per access
    double bitline_swing_v = 1.0;      ///< read swing (write = full rail)

    /**
     * Global calibration of array energies (see file comment). Applied
     * multiplicatively to every array/CAM access energy.
     */
    double array_energy_scale = 3.0;

    /** @return cycle time. */
    Seconds cycleSeconds() const { return 1.0 / freq_hz; }
};

} // namespace thermctl

#endif // THERMCTL_POWER_TECHNOLOGY_HH
