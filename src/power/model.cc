#include "power/model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace thermctl
{

namespace
{

/**
 * Fold a logical (entries x bits) structure into a roughly square
 * physical array, as CACTI does, to balance wordline and bitline lengths.
 */
ArrayGeometry
folded(std::uint64_t entries, std::uint32_t bits, std::uint32_t read_ports,
       std::uint32_t write_ports)
{
    const double total_bits = static_cast<double>(entries) * bits;
    double rows = std::pow(2.0, std::round(std::log2(std::sqrt(
        std::max(total_bits, 4.0)))));
    // Subarray limits: structures beyond 512x512 are banked and only one
    // subarray fires per access (plus H-tree routing).
    rows = std::clamp(rows, 4.0, 512.0);
    const double cols =
        std::clamp(total_bits / rows, 4.0, 512.0);
    ArrayGeometry geom{
        .rows = static_cast<std::uint32_t>(rows),
        .cols_bits = static_cast<std::uint32_t>(std::ceil(cols)),
        .read_ports = read_ports,
        .write_ports = write_ports,
    };
    if (total_bits > rows * cols)
        geom.total_bits = static_cast<std::uint64_t>(total_bits);
    return geom;
}

} // namespace

const char *
structureName(StructureId id)
{
    switch (id) {
      case StructureId::Lsq: return "LSQ";
      case StructureId::Window: return "window";
      case StructureId::Regfile: return "regfile";
      case StructureId::Bpred: return "bpred";
      case StructureId::DCache: return "dcache";
      case StructureId::IntExec: return "int-exec";
      case StructureId::FpExec: return "fp-exec";
      case StructureId::RestOfChip: return "rest";
      default: return "?";
    }
}

const char *
clockGatingStyleName(ClockGatingStyle style)
{
    switch (style) {
      case ClockGatingStyle::Cc0: return "cc0";
      case ClockGatingStyle::Cc1: return "cc1";
      case ClockGatingStyle::Cc2: return "cc2";
      case ClockGatingStyle::Cc3: return "cc3";
      default: return "?";
    }
}

PowerModel::PowerModel(const PowerConfig &cfg, const CpuConfig &cpu,
                       const MemoryHierarchyConfig &mem)
    : cfg_(cfg), cpu_(cpu), mem_(mem)
{
    const Technology &tech = cfg.tech;
    if (tech.freq_hz <= 0.0 || tech.vdd <= 0.0)
        fatal("PowerModel: frequency and Vdd must be positive");
    if (cfg.idle_fraction < 0.0 || cfg.idle_fraction > 1.0)
        fatal("PowerModel: idle_fraction must be in [0, 1]");

    // ------------------------------------------------------------- LSQ
    // Address CAM searched by loads plus a payload RAM.
    CamEnergyModel lsq_cam(
        CamGeometry{.entries = cpu.lsq_size, .tag_bits = 40,
                    .search_ports = cpu.num_mem_ports,
                    .write_ports = cpu.dispatch_width},
        tech);
    ArrayEnergyModel lsq_ram(
        ArrayGeometry{.rows = cpu.lsq_size, .cols_bits = 80,
                      .read_ports = cpu.num_mem_ports,
                      .write_ports = cpu.dispatch_width},
        tech);
    e_lsq_search_ = lsq_cam.searchEnergy() + lsq_ram.readEnergy();
    e_lsq_insert_ = lsq_cam.writeEnergy() + lsq_ram.writeEnergy();

    // ---------------------------------------------------------- window
    // RUU payload RAM + wakeup CAM + selection logic.
    const std::uint32_t issue_width =
        cpu.int_issue_width + cpu.fp_issue_width;
    ArrayEnergyModel window_ram(
        ArrayGeometry{.rows = cpu.window_size, .cols_bits = 200,
                      .read_ports = issue_width,
                      .write_ports = cpu.dispatch_width},
        tech);
    CamEnergyModel window_cam(
        CamGeometry{.entries = cpu.window_size, .tag_bits = 8,
                    .search_ports = issue_width,
                    .write_ports = cpu.dispatch_width},
        tech);
    e_window_dispatch_ = window_ram.writeEnergy()
        + window_cam.writeEnergy();
    e_window_issue_ = window_ram.readEnergy();
    e_window_wakeup_ = 2.0 * window_cam.searchEnergy();

    // --------------------------------------------------------- regfile
    ArrayEnergyModel regfile(
        ArrayGeometry{.rows = 64, .cols_bits = 64,
                      .read_ports = 2 * issue_width,
                      .write_ports = issue_width},
        tech);
    e_regfile_read_ = regfile.readEnergy();
    e_regfile_write_ = regfile.writeEnergy();

    // ----------------------------------------------------------- bpred
    const auto &bp = cpu.bpred;
    ArrayEnergyModel bimod(folded(bp.bimod_entries, 2, 1, 1), tech);
    ArrayEnergyModel gag(folded(bp.gag_entries, 2, 1, 1), tech);
    ArrayEnergyModel chooser(folded(bp.chooser_entries, 2, 1, 1), tech);
    ArrayEnergyModel btb(folded(bp.btb_entries, 52, 1, 1), tech);
    e_bpred_lookup_ = bimod.readEnergy() + gag.readEnergy()
        + chooser.readEnergy() + btb.readEnergy();
    e_bpred_update_ = bimod.writeEnergy() + gag.writeEnergy()
        + chooser.writeEnergy() + btb.writeEnergy();

    // ---------------------------------------------------------- caches
    ArrayEnergyModel dcache(
        folded(mem.l1d.size_bytes, 8, cpu.num_mem_ports, 1), tech);
    ArrayEnergyModel dcache_tags(
        folded(mem.l1d.size_bytes / mem.l1d.block_bytes, 25,
               cpu.num_mem_ports, 1),
        tech);
    e_dcache_access_ = dcache.readEnergy() + dcache_tags.readEnergy();

    ArrayEnergyModel icache(folded(mem.l1i.size_bytes, 8, 1, 1), tech);
    e_icache_access_ = icache.readEnergy();

    ArrayEnergyModel l2(folded(mem.l2.size_bytes, 8, 1, 1), tech);
    e_l2_access_ = l2.readEnergy();

    // --------------------------------------- per-structure calibration
    auto scale_of = [&](StructureId id) {
        return cfg.structure_scale[static_cast<std::size_t>(id)];
    };
    e_lsq_search_ *= scale_of(StructureId::Lsq);
    e_lsq_insert_ *= scale_of(StructureId::Lsq);
    e_window_dispatch_ *= scale_of(StructureId::Window);
    e_window_issue_ *= scale_of(StructureId::Window);
    e_window_wakeup_ *= scale_of(StructureId::Window);
    e_regfile_read_ *= scale_of(StructureId::Regfile);
    e_regfile_write_ *= scale_of(StructureId::Regfile);
    e_bpred_lookup_ *= scale_of(StructureId::Bpred);
    e_bpred_update_ *= scale_of(StructureId::Bpred);
    e_dcache_access_ *= scale_of(StructureId::DCache);
    cfg_.e_int_alu_op *= scale_of(StructureId::IntExec);
    cfg_.e_int_mult_op *= scale_of(StructureId::IntExec);
    cfg_.e_fp_alu_op *= scale_of(StructureId::FpExec);
    cfg_.e_fp_mult_op *= scale_of(StructureId::FpExec);
    e_icache_access_ *= scale_of(StructureId::RestOfChip);
    e_l2_access_ *= scale_of(StructureId::RestOfChip);
    cfg_.e_decode_op *= scale_of(StructureId::RestOfChip);

    // ------------------------------------------------ per-cycle peaks
    auto &pk = peak_energy_;
    pk[static_cast<std::size_t>(StructureId::Lsq)] =
        cpu.num_mem_ports * e_lsq_search_
        + cpu.dispatch_width * e_lsq_insert_;
    pk[static_cast<std::size_t>(StructureId::Window)] =
        cpu.dispatch_width * e_window_dispatch_
        + issue_width * (e_window_issue_ + e_window_wakeup_);
    pk[static_cast<std::size_t>(StructureId::Regfile)] =
        2.0 * issue_width * e_regfile_read_
        + issue_width * e_regfile_write_;
    pk[static_cast<std::size_t>(StructureId::Bpred)] =
        2.0 * (e_bpred_lookup_ + e_bpred_update_);
    pk[static_cast<std::size_t>(StructureId::DCache)] =
        cpu.num_mem_ports * e_dcache_access_;
    pk[static_cast<std::size_t>(StructureId::IntExec)] =
        cpu.num_int_alu * cfg_.e_int_alu_op
        + cpu.num_int_mult * cfg_.e_int_mult_op;
    pk[static_cast<std::size_t>(StructureId::FpExec)] =
        cpu.num_fp_alu * cfg_.e_fp_alu_op
        + cpu.num_fp_mult * cfg_.e_fp_mult_op;
    pk[static_cast<std::size_t>(StructureId::RestOfChip)] =
        cfg_.rest_base_watts * tech.cycleSeconds()
        + e_icache_access_
        + 2.0 * e_l2_access_
        + cpu.dispatch_width * cfg_.e_decode_op;

    for (StructureId id : kAllStructures) {
        peak_[id] = peak_energy_[static_cast<std::size_t>(id)]
            * tech.freq_hz;
    }
}

double
PowerModel::activeEnergy(StructureId id, const CpuActivity &act) const
{
    switch (id) {
      case StructureId::Lsq:
        // lsq_accesses mixes inserts and searches; charge the mean.
        return act.lsq_accesses * 0.5 * (e_lsq_search_ + e_lsq_insert_);
      case StructureId::Window:
        return act.dispatched_ops * e_window_dispatch_
            + (act.issued_int + act.issued_fp + act.issued_mem)
                  * e_window_issue_
            + act.wakeup_broadcasts * e_window_wakeup_;
      case StructureId::Regfile:
        return act.regfile_reads * e_regfile_read_
            + act.regfile_writes * e_regfile_write_;
      case StructureId::Bpred:
        return act.bpred_lookups * e_bpred_lookup_
            + act.bpred_updates * e_bpred_update_;
      case StructureId::DCache:
        return act.l1d_accesses * e_dcache_access_;
      case StructureId::IntExec:
        return act.int_alu_ops * cfg_.e_int_alu_op
            + act.int_mult_ops * cfg_.e_int_mult_op;
      case StructureId::FpExec:
        return act.fp_alu_ops * cfg_.e_fp_alu_op
            + act.fp_mult_ops * cfg_.e_fp_mult_op;
      case StructureId::RestOfChip:
        return cfg_.rest_base_watts * cfg_.tech.cycleSeconds()
            + act.l1i_accesses * e_icache_access_
            + act.l2_accesses * e_l2_access_
            + act.decoded_ops * cfg_.e_decode_op;
      default:
        panic("unknown structure id");
    }
}

double
PowerModel::gate(double active_j, double peak_j) const
{
    active_j = std::min(active_j, peak_j);
    switch (cfg_.gating) {
      case ClockGatingStyle::Cc0:
        return peak_j;
      case ClockGatingStyle::Cc1:
        return active_j > 0.0 ? peak_j : 0.0;
      case ClockGatingStyle::Cc2:
        return active_j;
      case ClockGatingStyle::Cc3:
        return std::max(active_j, cfg_.idle_fraction * peak_j);
      default:
        panic("unknown gating style");
    }
}

PowerVector
PowerModel::leakagePower(
    const std::array<Celsius, kNumStructures> &temps_c) const
{
    PowerVector out;
    if (!cfg_.leakage_enabled)
        return out;
    for (StructureId id : kAllStructures) {
        const std::size_t i = static_cast<std::size_t>(id);
        const double exponent =
            (temps_c[i] - cfg_.leakage_ref_temp)
            / cfg_.leakage_doubling_c;
        // Saturate at the structure's peak dynamic power: beyond that
        // the exponential model leaves its validity range (and the
        // simulation would otherwise run away numerically).
        out[id] = std::min(cfg_.leakage_fraction_at_ref * peak_[id]
                               * std::exp2(exponent),
                           peak_[id]);
    }
    return out;
}

PowerVector
PowerModel::cyclePower(const CpuActivity &act) const
{
    PowerVector out;
    for (StructureId id : kAllStructures) {
        const double peak_j =
            peak_energy_[static_cast<std::size_t>(id)];
        double joules;
        if (id == StructureId::RestOfChip) {
            // The base clock/misc component of RestOfChip is not
            // gateable; only the activity part is.
            const double base_j =
                cfg_.rest_base_watts * cfg_.tech.cycleSeconds();
            const double active_j =
                activeEnergy(id, act) - base_j;
            joules = base_j + gate(active_j, peak_j - base_j);
        } else {
            joules = gate(activeEnergy(id, act), peak_j);
        }
        out[id] = joules * cfg_.tech.freq_hz;
    }
    return out;
}

} // namespace thermctl
