/**
 * @file
 * The on-chip structures tracked individually by the power and thermal
 * models — the seven blocks of the paper's Table 3 plus a "rest of chip"
 * aggregate (I-cache, L2, decode/rename, clock tree, buses) that
 * contributes to chip-wide power and occupies the remaining die area.
 */

#ifndef THERMCTL_POWER_STRUCTURES_HH
#define THERMCTL_POWER_STRUCTURES_HH

#include <array>
#include <cstddef>

namespace thermctl
{

/** Identifiers of individually modeled structures. */
enum class StructureId : std::size_t
{
    Lsq = 0,      ///< load/store queue
    Window,       ///< instruction window (RUU incl. uncommitted regs)
    Regfile,      ///< architectural register file
    Bpred,        ///< branch predictor (incl. BTB)
    DCache,       ///< L1 data cache
    IntExec,      ///< integer execution units
    FpExec,       ///< floating-point execution units
    RestOfChip,   ///< everything else (I-cache, L2, rename, clock, buses)
    NumStructures,
};

inline constexpr std::size_t kNumStructures =
    static_cast<std::size_t>(StructureId::NumStructures);

/** Number of structures that are paper-Table-3 thermal hot-spot blocks. */
inline constexpr std::size_t kNumHotspotStructures = 7;

/** @return printable structure name matching the paper's Table 3. */
const char *structureName(StructureId id);

/** A per-structure vector of Watts (or Joules, by context). */
struct PowerVector
{
    std::array<double, kNumStructures> value{};

    double &operator[](StructureId id)
    {
        return value[static_cast<std::size_t>(id)];
    }

    double operator[](StructureId id) const
    {
        return value[static_cast<std::size_t>(id)];
    }

    /** @return sum over all structures (chip-wide total). */
    double
    total() const
    {
        double t = 0.0;
        for (double v : value)
            t += v;
        return t;
    }
};

/** Iterate all structure ids. */
inline constexpr std::array<StructureId, kNumStructures> kAllStructures = {
    StructureId::Lsq, StructureId::Window, StructureId::Regfile,
    StructureId::Bpred, StructureId::DCache, StructureId::IntExec,
    StructureId::FpExec, StructureId::RestOfChip,
};

} // namespace thermctl

#endif // THERMCTL_POWER_STRUCTURES_HH
