#include "power/array.hh"

#include <cmath>

#include "common/logging.hh"

namespace thermctl
{

namespace
{

constexpr double kFemto = 1e-15;

/** log2 of the next power of two (decoder depth). */
double
decodeDepth(std::uint32_t rows)
{
    return rows > 1 ? std::ceil(std::log2(static_cast<double>(rows))) : 1.0;
}

} // namespace

ArrayEnergyModel::ArrayEnergyModel(const ArrayGeometry &geom,
                                   const Technology &tech)
    : geom_(geom)
{
    if (geom.rows == 0 || geom.cols_bits == 0)
        fatal("ArrayEnergyModel: geometry must be non-empty");

    const double ports =
        static_cast<double>(geom.read_ports + geom.write_ports);
    // Multi-ported cells grow in both dimensions.
    const double cell_w = tech.cell_width_um
        + tech.port_pitch_um * (ports - 1.0);
    const double cell_h = tech.cell_height_um
        + tech.port_pitch_um * (ports - 1.0);

    // Wordline: pass-gate load + wire across the row.
    const double c_wordline_ff = geom.cols_bits
        * (2.0 * tech.c_gate_ff + tech.c_wire_ff_per_um * cell_w);

    // Bitline (per column): drain load + wire down the column.
    const double c_bitline_ff = geom.rows
        * (tech.c_drain_ff + tech.c_wire_ff_per_um * cell_h);

    // Decoder: modeled as a chain of NAND/inverter stages; capacitance
    // grows with depth and rows (predecode wires).
    const double c_decode_ff = 40.0 * decodeDepth(geom.rows)
        + 0.05 * geom.rows;

    // H-tree routing across the full banked footprint: address/data wires
    // spanning ~sqrt(total area), charged on every access.
    double c_route_ff = 0.0;
    const double subarray_bits =
        static_cast<double>(geom.rows) * geom.cols_bits;
    if (geom.total_bits > subarray_bits) {
        const double cell_area_um2 = cell_w * cell_h;
        const double side_um = std::sqrt(
            static_cast<double>(geom.total_bits) * cell_area_um2);
        // 64 data wires plus address, out and back.
        c_route_ff = 80.0 * tech.c_wire_ff_per_um * side_um;
    }

    const double v = tech.vdd;
    const double e_decode = (c_decode_ff + c_route_ff) * kFemto * v * v;
    const double e_wordline = c_wordline_ff * kFemto * v * v;

    // Reads: differential bitline pairs swing by bitline_swing_v; every
    // column participates; sense amps fire per column.
    const double e_bitline_read = geom.cols_bits * 2.0 * c_bitline_ff
        * kFemto * v * tech.bitline_swing_v;
    const double e_sense = geom.cols_bits * tech.sense_amp_energy_fj
        * kFemto;

    // Writes: full-rail swing on the written columns (single-ended pair).
    const double e_bitline_write = geom.cols_bits * c_bitline_ff
        * kFemto * v * v;

    read_energy_j_ = tech.array_energy_scale
        * (e_decode + e_wordline + e_bitline_read + e_sense);
    write_energy_j_ = tech.array_energy_scale
        * (e_decode + e_wordline + e_bitline_write);
}

double
ArrayEnergyModel::peakCycleEnergy() const
{
    return geom_.read_ports * read_energy_j_
        + geom_.write_ports * write_energy_j_;
}

CamEnergyModel::CamEnergyModel(const CamGeometry &geom,
                               const Technology &tech)
    : geom_(geom)
{
    if (geom.entries == 0 || geom.tag_bits == 0)
        fatal("CamEnergyModel: geometry must be non-empty");

    const double ports =
        static_cast<double>(geom.search_ports + geom.write_ports);
    const double cell_h = tech.cell_height_um
        + tech.port_pitch_um * (ports - 1.0);

    // Tag lines run the full height of the CAM, loading every entry's
    // comparator gates.
    const double c_tagline_ff = geom.entries
        * (2.0 * tech.c_gate_ff + tech.c_wire_ff_per_um * cell_h);

    // Match lines: one per entry, precharged and (mostly) discharged
    // every search.
    const double c_matchline_ff = geom.tag_bits
        * (tech.c_drain_ff + tech.c_wire_ff_per_um * 1.0);

    const double v = tech.vdd;
    const double e_taglines = geom.tag_bits * 2.0 * c_tagline_ff
        * kFemto * v * v;
    const double e_matchlines = geom.entries * c_matchline_ff
        * kFemto * v * v;

    search_energy_j_ = tech.array_energy_scale
        * (e_taglines + e_matchlines);

    // Writing an entry is a small RAM write.
    ArrayGeometry ram{.rows = geom.entries, .cols_bits = geom.tag_bits,
                      .read_ports = 0, .write_ports = 1};
    // Guard: ArrayEnergyModel requires >= 1 read port only implicitly;
    // construct with 1 and take the write energy.
    ram.read_ports = 1;
    ArrayEnergyModel ram_model(ram, tech);
    write_energy_j_ = ram_model.writeEnergy();
}

double
CamEnergyModel::peakCycleEnergy() const
{
    return geom_.search_ports * search_energy_j_
        + geom_.write_ports * write_energy_j_;
}

} // namespace thermctl
