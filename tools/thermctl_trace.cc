/**
 * @file
 * thermctl_trace — capture and inspect micro-op traces.
 *
 * Usage:
 *   thermctl_trace record --bench NAME --ops N --out PATH
 *       Capture N committed-path micro-ops of a benchmark profile into
 *       an EIO-style binary trace (replayable with thermctl_run
 *       --trace PATH or SimConfig::trace_path).
 *
 *   thermctl_trace info --in PATH [--dump N]
 *       Print summary statistics of a trace (instruction mix, branch
 *       and memory behaviour) and optionally the first N ops.
 */

#include <array>
#include <iostream>
#include <string>

#include "common/logging.hh"
#include "common/table.hh"
#include "workload/spec_profiles.hh"
#include "workload/synthetic.hh"
#include "workload/trace.hh"

using namespace thermctl;

namespace
{

int
record(const std::string &bench, std::uint64_t ops,
       const std::string &out)
{
    SyntheticWorkload wl(specProfile(bench));
    TraceWriter writer(out);
    for (std::uint64_t i = 0; i < ops; ++i)
        writer.append(wl.next());
    writer.close();
    std::cout << "wrote " << writer.count() << " micro-ops of " << bench
              << " to " << out << "\n";
    return 0;
}

int
info(const std::string &in, std::uint64_t dump)
{
    TraceReader reader(in);
    std::array<std::uint64_t,
               static_cast<std::size_t>(OpClass::NumOpClasses)>
        counts{};
    std::uint64_t branches = 0, taken = 0, calls = 0, returns = 0;
    std::uint64_t mem_ops = 0;
    Addr min_addr = ~Addr{0}, max_addr = 0;

    TraceReader dumper(in);
    for (std::uint64_t i = 0; i < dump && !dumper.done(); ++i)
        std::cout << dumper.next().toString() << "\n";

    const std::uint64_t total = reader.count();
    while (!reader.done()) {
        const MicroOp op = reader.next();
        ++counts[static_cast<std::size_t>(op.op)];
        if (op.is_branch) {
            ++branches;
            taken += op.taken;
            calls += op.is_call;
            returns += op.is_return;
        }
        if (isMemOp(op.op)) {
            ++mem_ops;
            min_addr = std::min(min_addr, op.mem_addr);
            max_addr = std::max(max_addr, op.mem_addr);
        }
    }

    std::cout << "trace         : " << in << "\n"
              << "micro-ops     : " << total << "\n";
    TextTable t;
    t.setHeader({"class", "count", "fraction"});
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(OpClass::NumOpClasses); ++c) {
        if (counts[c] == 0)
            continue;
        t.addRow({opClassName(static_cast<OpClass>(c)),
                  std::to_string(counts[c]),
                  formatPercent(double(counts[c]) / double(total), 1)});
    }
    t.print(std::cout);
    if (branches) {
        std::cout << "branches      : " << branches << " ("
                  << formatPercent(double(taken) / branches, 1)
                  << " taken, " << calls << " calls, " << returns
                  << " returns)\n";
    }
    if (mem_ops) {
        std::cout << "memory ops    : " << mem_ops << " (addresses 0x"
                  << std::hex << min_addr << " .. 0x" << max_addr
                  << std::dec << ")\n";
    }
    return 0;
}

void
usage()
{
    std::cout
        << "usage: thermctl_trace record --bench NAME --ops N --out P\n"
        << "       thermctl_trace info --in PATH [--dump N]\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string mode = argv[1];
    std::string bench = "186.crafty";
    std::string out = "trace.bin";
    std::string in;
    std::uint64_t ops = 1000000;
    std::uint64_t dump = 0;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        try {
            if (arg == "--bench")
                bench = next();
            else if (arg == "--ops")
                ops = std::stoull(next());
            else if (arg == "--out")
                out = next();
            else if (arg == "--in")
                in = next();
            else if (arg == "--dump")
                dump = std::stoull(next());
            else {
                usage();
                return 2;
            }
        } catch (const FatalError &e) {
            std::cerr << e.what() << "\n";
            return 2;
        }
    }

    try {
        if (mode == "record")
            return record(bench, ops, out);
        if (mode == "info") {
            if (in.empty())
                fatal("info mode needs --in PATH");
            return info(in, dump);
        }
        usage();
        return 2;
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
}
