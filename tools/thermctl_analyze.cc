/**
 * @file
 * thermctl-deepcheck CLI: whole-project static analysis over the
 * thermctl source tree (see tools/analyze/analysis.hh).
 *
 * Usage:
 *   thermctl_analyze [--layers FILE] [--allowlist FILE]
 *                    [--must-check NAME[*]]... [--root PREFIX]...
 *                    [--exclude SUBSTR]... [--pass RULE]...
 *                    [--allow-field Struct::field]... [--json] [--ci]
 *                    [--list-rules] PATH...
 *
 * Unlike thermctl_lint, one invocation builds a single project model
 * over *all* the files it is given — include-graph passes only see
 * edges between files of the same invocation, so run it over the whole
 * tree (scripts/check.sh --stage analyze does:
 * `thermctl_analyze --ci --json src/ tools/ tests/ bench/ examples/
 * --exclude tests/analyze/fixtures`).
 *
 * --layers defaults to `.thermctl-layers` in the current directory when
 * that file exists; without a layers spec the layering pass is skipped
 * (cycle detection still runs). --must-check entries extend the
 * built-in seed set; a trailing '*' makes an entry a prefix. --root
 * replaces the default include-resolution roots (src, tools). --pass
 * (repeatable, validated against --list-rules) restricts the run to
 * named passes so single-pass runs are scriptable; --allow-field
 * excludes one "Struct::field" from the field-coverage pass. Exit
 * status: 0 clean, 1 findings (or, under --ci, stale allowlist
 * entries), 2 usage or I/O error.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "analyze/analysis.hh"
#include "lint/lint.hh"

namespace fs = std::filesystem;
using namespace thermctl::analysis; // tool main, not a header
using thermctl::lint::Allowlist;
using thermctl::lint::Finding;

namespace
{

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".hh" || ext == ".hpp" || ext == ".h" || ext == ".cc"
           || ext == ".cpp";
}

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    out.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
    return !in.bad();
}

void
usage(std::ostream &os)
{
    os << "usage: thermctl_analyze [--layers FILE] [--allowlist FILE]\n"
          "                        [--must-check NAME[*]]... [--root "
          "PREFIX]...\n"
          "                        [--exclude SUBSTR]... [--pass RULE]...\n"
          "                        [--allow-field Struct::field]...\n"
          "                        [--json] [--ci] [--list-rules] PATH...\n"
          "Whole-project static analysis: include-graph layering + "
          "cycles,\nunchecked must-check/[[nodiscard]] returns, static "
          "lock-order\nauditing, tainted-allocation bounds "
          "(alloc-bound), and struct\nfield-coverage of "
          "digest/encode/decode bodies (field-coverage).\nRun it over "
          "the whole tree in one invocation.\n"
          "--pass: run only the named passes (see --list-rules).\n"
          "--allow-field: exclude Struct::field from field-coverage.\n"
          "--ci: stale allowlist entries fail the run (exit 1).\n"
          "Exit: 0 clean, 1 findings, 2 usage/I-O error.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> paths;
    std::vector<std::string> excludes;
    std::string allowlist_path;
    std::string layers_path;
    bool layers_explicit = false;
    bool json = false;
    bool ci = false;
    MustCheckSet must = MustCheckSet::defaults();
    BuildOptions build_opts;
    AnalyzeOptions analyze_opts;
    bool roots_overridden = false;

    auto needsValue = [&](int &i, const std::string &arg) -> const char * {
        if (i + 1 >= argc) {
            std::cerr << "thermctl_analyze: " << arg << " needs a value\n";
            return nullptr;
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--ci") {
            ci = true;
        } else if (arg == "--list-rules") {
            for (const std::string &id : analysisRuleIds())
                std::cout << id << "\n";
            return 0;
        } else if (arg == "--allowlist") {
            const char *v = needsValue(i, arg);
            if (!v)
                return 2;
            allowlist_path = v;
        } else if (arg == "--layers") {
            const char *v = needsValue(i, arg);
            if (!v)
                return 2;
            layers_path = v;
            layers_explicit = true;
        } else if (arg == "--must-check") {
            const char *v = needsValue(i, arg);
            if (!v)
                return 2;
            must.add(v);
        } else if (arg == "--root") {
            const char *v = needsValue(i, arg);
            if (!v)
                return 2;
            if (!roots_overridden) {
                build_opts.roots.clear();
                roots_overridden = true;
            }
            build_opts.roots.emplace_back(v);
        } else if (arg == "--exclude") {
            const char *v = needsValue(i, arg);
            if (!v)
                return 2;
            excludes.emplace_back(v);
        } else if (arg == "--pass") {
            const char *v = needsValue(i, arg);
            if (!v)
                return 2;
            const std::vector<std::string> &ids = analysisRuleIds();
            if (std::find(ids.begin(), ids.end(), v) == ids.end()) {
                std::cerr << "thermctl_analyze: unknown pass '" << v
                          << "' (see --list-rules)\n";
                return 2;
            }
            analyze_opts.passes.emplace_back(v);
        } else if (arg == "--allow-field") {
            const char *v = needsValue(i, arg);
            if (!v)
                return 2;
            if (std::string(v).find("::") == std::string::npos) {
                std::cerr << "thermctl_analyze: --allow-field wants "
                             "'Struct::field', got '"
                          << v << "'\n";
                return 2;
            }
            analyze_opts.allowed_fields.emplace(v);
        } else if (arg == "-h" || arg == "--help") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "thermctl_analyze: unknown option '" << arg
                      << "'\n";
            usage(std::cerr);
            return 2;
        } else {
            paths.push_back(std::move(arg));
        }
    }
    if (paths.empty()) {
        usage(std::cerr);
        return 2;
    }

    Allowlist allow;
    if (!allowlist_path.empty()) {
        std::string text;
        if (!readFile(allowlist_path, text)) {
            std::cerr << "thermctl_analyze: cannot read allowlist '"
                      << allowlist_path << "'\n";
            return 2;
        }
        std::string error;
        if (!allow.parse(text, analysisRuleIds(), error)) {
            std::cerr << "thermctl_analyze: " << error << "\n";
            return 2;
        }
    }

    LayerSpec layers;
    if (!layers_explicit && fs::exists(".thermctl-layers"))
        layers_path = ".thermctl-layers";
    if (!layers_path.empty()) {
        std::string text;
        if (!readFile(layers_path, text)) {
            std::cerr << "thermctl_analyze: cannot read layers file '"
                      << layers_path << "'\n";
            return 2;
        }
        std::string error;
        if (!layers.parse(text, error)) {
            std::cerr << "thermctl_analyze: " << layers_path << ": "
                      << error << "\n";
            return 2;
        }
    }

    // Expand arguments into the ordered, de-duplicated file list.
    auto excluded = [&](const std::string &generic) {
        return std::any_of(excludes.begin(), excludes.end(),
                           [&](const std::string &e) {
                               return generic.find(e)
                                      != std::string::npos;
                           });
    };
    std::vector<fs::path> files;
    for (const std::string &p : paths) {
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            std::vector<fs::path> batch;
            for (const auto &entry :
                 fs::recursive_directory_iterator(p, ec)) {
                if (entry.is_regular_file() && isSourceFile(entry.path())
                    && !excluded(entry.path().generic_string()))
                    batch.push_back(entry.path());
            }
            std::sort(batch.begin(), batch.end());
            files.insert(files.end(), batch.begin(), batch.end());
        } else if (fs::is_regular_file(p, ec)) {
            if (!excluded(fs::path(p).generic_string()))
                files.emplace_back(p);
        } else {
            std::cerr << "thermctl_analyze: no such file or directory: "
                      << p << "\n";
            return 2;
        }
    }

    std::vector<std::pair<std::string, std::string>> sources;
    sources.reserve(files.size());
    for (const fs::path &file : files) {
        std::string content;
        if (!readFile(file, content)) {
            std::cerr << "thermctl_analyze: cannot read " << file << "\n";
            return 2;
        }
        sources.emplace_back(file.generic_string(), std::move(content));
    }

    const ProjectModel model = ProjectModel::build(sources, build_opts);
    std::vector<Finding> findings;
    for (Finding &f : analyzeProject(model, layers, must, analyze_opts)) {
        if (!allow.allows(f))
            findings.push_back(std::move(f));
    }

    const std::vector<std::string> stale = allow.unusedEntries();
    for (const std::string &entry : stale)
        std::cerr << "thermctl_analyze: stale allowlist entry: " << entry
                  << "\n";

    if (json)
        std::cout << thermctl::lint::formatJson(findings);
    else
        std::cout << thermctl::lint::formatText(findings);

    if (!findings.empty()) {
        std::cerr << "thermctl_analyze: " << findings.size() << " finding"
                  << (findings.size() == 1 ? "" : "s") << " across "
                  << sources.size() << " files\n";
        return 1;
    }
    if (ci && !stale.empty()) {
        std::cerr << "thermctl_analyze: --ci: " << stale.size()
                  << " stale allowlist entr"
                  << (stale.size() == 1 ? "y" : "ies")
                  << " (remove them or fix the suffix)\n";
        return 1;
    }
    return 0;
}
