/**
 * @file
 * thermctl_serve — long-running thermal-simulation daemon.
 *
 * Usage:
 *   thermctl_serve [options]
 *     --socket PATH       Unix-domain listener (default: THERMCTL_SOCKET,
 *                         $XDG_RUNTIME_DIR/thermctl.sock, or
 *                         /tmp/thermctl-<uid>.sock)
 *     --tcp PORT          also listen on TCP loopback (0 = ephemeral;
 *                         the bound port is printed on startup)
 *     --jobs N            sweep engine worker threads (default
 *                         THERMCTL_JOBS or all cores)
 *     --cache-dir PATH    result cache directory (default
 *                         THERMCTL_CACHE_DIR or ~/.cache/thermctl)
 *     --no-cache          disable the on-disk result cache
 *     --max-queue N       admission-control queue bound (default 256)
 *     --dispatchers N     scheduler dispatcher threads (default 2)
 *     --batch-window-ms N hold dispatch briefly so concurrent requests
 *                         coalesce and batch (default 0 = immediate)
 *     --watchdog-ms N     fail dispatches stuck longer than N ms with a
 *                         typed Stalled error (default 0 = off)
 *     --workers N         event-core request workers (default 2)
 *     --idle-timeout-ms N evict connections idle longer than N ms
 *                         (default 30000; 0 = never)
 *     --max-write-buffer N per-connection reply high water in bytes;
 *                         past it the peer is not read until it drains
 *     --sndbuf N          SO_SNDBUF for accepted sockets (testing)
 *     --drain-flush-ms N  reply-flush budget during drain (default 5000)
 *     --fault-plan SPEC   arm the deterministic fault injector with a
 *                         seeded plan, e.g.
 *                         "seed=7;serve.sock.write=abort@0.05"
 *                         (chaos testing; needs a THERMCTL_FAULTS build)
 *
 * On startup the daemon sweeps its cache directory for leftovers of a
 * crashed predecessor: orphaned publish temp files are removed and
 * entries that no longer decode are quarantined, so a crash mid-publish
 * can never poison later runs.
 *
 * SIGTERM/SIGINT trigger a graceful drain: in-flight requests finish
 * and their replies are delivered, new work is refused with a typed
 * Draining error, then the daemon logs its counters and exits 0.
 */

#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "common/logging.hh"
#include "fault/fault.hh"
#include "serve/server.hh"
#include "sim/sweep.hh"

using namespace thermctl;
using namespace thermctl::serve;

namespace
{

void
usage()
{
    std::cout <<
        "usage: thermctl_serve [--socket PATH] [--tcp PORT] [--jobs N]\n"
        "                      [--cache-dir PATH] [--no-cache]\n"
        "                      [--max-queue N] [--dispatchers N]\n"
        "                      [--batch-window-ms N] [--watchdog-ms N]\n"
        "                      [--workers N] [--idle-timeout-ms N]\n"
        "                      [--max-write-buffer N] [--sndbuf N]\n"
        "                      [--drain-flush-ms N] [--fault-plan SPEC]\n";
}

void
logStats(const StatsReply &s)
{
    std::cerr << "thermctl_serve: served " << s.requests_total
              << " requests (" << s.run_requests << " run, "
              << s.sweep_requests << " sweep, " << s.cache_queries
              << " cache-query) over " << s.connections_accepted
              << " connections in " << s.uptime_seconds << " s\n"
              << "thermctl_serve: " << s.points_submitted
              << " points submitted, " << s.points_simulated
              << " simulated, " << s.cache_hits << " cache hits, "
              << s.coalesced << " coalesced, " << s.rejected_overload
              << " overloaded, " << s.rejected_deadline
              << " deadline-expired, " << s.failed << " failed, "
              << s.stalled << " stalled\n"
              << "thermctl_serve: queue high water " << s.queue_high_water
              << ", latency mean " << s.latency_mean_ms << " ms (p50 "
              << s.latency_p50_ms << ", p90 " << s.latency_p90_ms
              << ", p99 " << s.latency_p99_ms << ")\n";
}

} // namespace

int
main(int argc, char **argv)
{
    ServerOptions opts;
    opts.unix_path = defaultSocketPath();
    const char *no_cache_env = std::getenv("THERMCTL_NO_CACHE");
    opts.sweep.use_cache = !(no_cache_env && no_cache_env[0] == '1');

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    fatal("missing value for ", arg);
                return argv[++i];
            };
            if (arg == "--socket") {
                opts.unix_path = next();
            } else if (arg == "--tcp") {
                opts.tcp = true;
                opts.tcp_port = std::stoi(next());
            } else if (arg == "--jobs") {
                const long v = std::stol(next());
                if (v < 1)
                    fatal("--jobs must be >= 1");
                opts.sweep.jobs = static_cast<unsigned>(v);
            } else if (arg == "--cache-dir") {
                opts.sweep.cache_dir = next();
            } else if (arg == "--no-cache") {
                opts.sweep.use_cache = false;
            } else if (arg == "--max-queue") {
                const long v = std::stol(next());
                if (v < 1)
                    fatal("--max-queue must be >= 1");
                opts.max_queue = static_cast<std::size_t>(v);
            } else if (arg == "--dispatchers") {
                const long v = std::stol(next());
                if (v < 1)
                    fatal("--dispatchers must be >= 1");
                opts.dispatchers = static_cast<unsigned>(v);
            } else if (arg == "--batch-window-ms") {
                opts.batch_window_ms =
                    static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--watchdog-ms") {
                opts.watchdog_ms =
                    static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--workers") {
                const long v = std::stol(next());
                if (v < 1)
                    fatal("--workers must be >= 1");
                opts.workers = static_cast<unsigned>(v);
            } else if (arg == "--idle-timeout-ms") {
                opts.idle_timeout_ms =
                    static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--max-write-buffer") {
                opts.max_write_buffer =
                    static_cast<std::size_t>(std::stoull(next()));
            } else if (arg == "--sndbuf") {
                opts.sndbuf = std::stoi(next());
            } else if (arg == "--drain-flush-ms") {
                opts.drain_flush_ms =
                    static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--fault-plan") {
                opts.fault_plan = next();
            } else if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else {
                usage();
                fatal("unknown option ", arg);
            }
        }

        opts.validate(); // surface flag errors before any side effect

        if (!opts.fault_plan.empty()) {
#if defined(THERMCTL_FAULTS_ENABLED) && THERMCTL_FAULTS_ENABLED
            // Server::start() arms the plan; just log what will run.
            std::cerr << "thermctl_serve: fault plan armed: "
                      << fault::FaultPlan::parse(opts.fault_plan)
                             .describe()
                      << "\n";
#else
            fatal("--fault-plan needs a build with THERMCTL_FAULTS=ON "
                  "(fault points are compiled out of this binary)");
#endif
        }

        // Recover the cache directory from a crashed predecessor before
        // the first request can read a half-published entry.
        if (opts.sweep.use_cache) {
            const std::string cache_dir =
                opts.sweep.cache_dir.empty()
                    ? SweepEngine::defaultCacheDir()
                    : opts.sweep.cache_dir;
            const CacheRecoveryStats rec = sweepCacheRecover(cache_dir);
            if (rec.quarantined > 0 || rec.tmp_removed > 0) {
                std::cerr << "thermctl_serve: cache recovery: scanned "
                          << rec.scanned << " entries, quarantined "
                          << rec.quarantined << ", removed "
                          << rec.tmp_removed << " temp files\n";
            }
        }

        // Signals are delivered to a dedicated sigwait thread so the
        // drain path runs in normal (not async-signal) context.
        sigset_t sigs;
        sigemptyset(&sigs);
        sigaddset(&sigs, SIGTERM);
        sigaddset(&sigs, SIGINT);
        pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

        Server server(opts);
        server.start();

        std::thread sig_thread([&server, sigs] {
            int sig = 0;
            sigwait(&sigs, &sig);
            if (!server.drainRequested()) {
                std::cerr << "thermctl_serve: caught "
                          << (sig == SIGTERM ? "SIGTERM" : "SIGINT")
                          << ", draining\n";
            }
            server.beginDrain();
        });

        std::cerr << "thermctl_serve: listening on " << opts.unix_path;
        if (opts.tcp)
            std::cerr << " and tcp:127.0.0.1:" << server.tcpPort();
        std::cerr << "\n";

        server.waitForDrainRequest();
        // A client-initiated drain leaves the signal thread parked in
        // sigwait; poke it so it can be joined before `server` dies.
        kill(getpid(), SIGTERM);
        sig_thread.join();
        server.shutdown();
        logStats(server.statsSnapshot());
        return 0;
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
}
