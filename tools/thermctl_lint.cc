/**
 * @file
 * thermctl-lint CLI: enforce the project's source rules over files and
 * directory trees.
 *
 * Usage:
 *   thermctl_lint [--allowlist FILE] [--json] [--ci] [--list-rules]
 *                 PATH...
 *
 * Directories are walked recursively for C++ sources (.hh/.hpp/.h/.cc/
 * .cpp). Exit status: 0 clean, 1 findings remain after the allowlist,
 * 2 usage or I/O error. Stale allowlist entries are reported on stderr;
 * under --ci (the scripts/check.sh mode) they fail the run with exit 1
 * so a fixed violation cannot leave its grandfathering entry behind.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "lint/lint.hh"

namespace fs = std::filesystem;
using namespace thermctl::lint; // tool main, not a header

namespace
{

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".hh" || ext == ".hpp" || ext == ".h" || ext == ".cc"
           || ext == ".cpp";
}

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    out.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
    return !in.bad();
}

void
usage(std::ostream &os)
{
    os << "usage: thermctl_lint [--allowlist FILE] [--json] [--ci]"
          " [--list-rules] PATH...\n"
          "Lints thermctl C++ sources; directories are walked"
          " recursively.\n"
          "--ci: stale allowlist entries fail the run (exit 1).\n"
          "Exit: 0 clean, 1 findings, 2 usage/I-O error.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> paths;
    std::string allowlist_path;
    bool json = false;
    bool ci = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--ci") {
            ci = true;
        } else if (arg == "--list-rules") {
            for (const std::string &id : ruleIds())
                std::cout << id << "\n";
            return 0;
        } else if (arg == "--allowlist") {
            if (i + 1 >= argc) {
                std::cerr << "thermctl_lint: --allowlist needs a file\n";
                return 2;
            }
            allowlist_path = argv[++i];
        } else if (arg == "-h" || arg == "--help") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "thermctl_lint: unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        } else {
            paths.push_back(std::move(arg));
        }
    }
    if (paths.empty()) {
        usage(std::cerr);
        return 2;
    }

    Allowlist allow;
    if (!allowlist_path.empty()) {
        std::string text;
        if (!readFile(allowlist_path, text)) {
            std::cerr << "thermctl_lint: cannot read allowlist '"
                      << allowlist_path << "'\n";
            return 2;
        }
        std::string error;
        if (!allow.parse(text, error)) {
            std::cerr << "thermctl_lint: " << error << "\n";
            return 2;
        }
    }

    // Expand arguments into the ordered file list.
    std::vector<fs::path> files;
    for (const std::string &p : paths) {
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            std::vector<fs::path> batch;
            for (const auto &entry :
                 fs::recursive_directory_iterator(p, ec)) {
                if (entry.is_regular_file() && isSourceFile(entry.path()))
                    batch.push_back(entry.path());
            }
            std::sort(batch.begin(), batch.end());
            files.insert(files.end(), batch.begin(), batch.end());
        } else if (fs::is_regular_file(p, ec)) {
            files.emplace_back(p);
        } else {
            std::cerr << "thermctl_lint: no such file or directory: " << p
                      << "\n";
            return 2;
        }
    }

    std::vector<Finding> findings;
    for (const fs::path &file : files) {
        std::string content;
        if (!readFile(file, content)) {
            std::cerr << "thermctl_lint: cannot read " << file << "\n";
            return 2;
        }
        for (Finding &f : lintFile(file.generic_string(), content)) {
            if (!allow.allows(f))
                findings.push_back(std::move(f));
        }
    }

    const std::vector<std::string> stale = allow.unusedEntries();
    for (const std::string &entry : stale)
        std::cerr << "thermctl_lint: stale allowlist entry: " << entry
                  << "\n";

    if (json)
        std::cout << formatJson(findings);
    else
        std::cout << formatText(findings);

    if (!findings.empty()) {
        std::cerr << "thermctl_lint: " << findings.size() << " finding"
                  << (findings.size() == 1 ? "" : "s") << " in "
                  << files.size() << " files\n";
        return 1;
    }
    if (ci && !stale.empty()) {
        std::cerr << "thermctl_lint: --ci: " << stale.size()
                  << " stale allowlist entr"
                  << (stale.size() == 1 ? "y" : "ies")
                  << " (remove them or fix the suffix)\n";
        return 1;
    }
    return 0;
}
