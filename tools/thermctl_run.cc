/**
 * @file
 * thermctl_run — command-line front end for simulations.
 *
 * Usage:
 *   thermctl_run [options]
 *     --bench NAMES      comma-separated benchmark profiles (default
 *                        186.crafty); any of the 18 SPEC2000-like
 *                        names, with or without the numeric prefix
 *     --trace PATH       replay a recorded micro-op trace instead
 *     --policy NAMES     comma-separated list drawn from none|toggle1|
 *                        toggle2|M|P|PI|PID|throttle|spec-ctrl|
 *                        vf-scaling   (default none)
 *     --warmup N         warm-up cycles (default 300000)
 *     --cycles N         measured cycles (default 1000000)
 *     --setpoint T       CT setpoint in C (default 111.6)
 *     --sample N         controller sampling interval (default 1000)
 *     --cores N          number of cores (default 1; >1 or a multicore
 *                        policy routes through the multicore engine)
 *     --coupling R       inter-core coupling resistance in K/W
 *     --budget W         chip power budget in W (0 = uncoordinated)
 *     --budget-policy P  uniform|demand|headroom (default uniform)
 *     --jobs N           sweep worker threads (default THERMCTL_JOBS
 *                        or all cores)
 *     --cache-dir PATH   result cache directory (default
 *                        THERMCTL_CACHE_DIR or ~/.cache/thermctl)
 *     --no-cache         disable the on-disk result cache
 *     --csv PATH         append one CSV record per result
 *     --trace-temps PATH write a temperature time series (CSV;
 *                        single benchmark/policy only, uncached)
 *     --list             list benchmark profiles and exit
 *
 * Multiple benchmarks and policies form a cartesian sweep executed by
 * the parallel SweepEngine; a single point goes through the same engine
 * (and cache) unless --trace-temps forces the direct probe path.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "multicore/multicore_sim.hh"
#include "sim/policy_factory.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

namespace
{

DtmPolicyKind
parsePolicy(const std::string &name)
{
    DtmPolicyKind kind;
    if (!parseDtmPolicyKind(name, kind)) {
        std::string all;
        for (const auto &n : dtmPolicyNames())
            all += all.empty() ? n : "|" + n;
        fatal("unknown policy '", name, "' (expected one of ", all, ")");
    }
    return kind;
}

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= arg.size()) {
        const std::size_t comma = arg.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? arg.size() : comma;
        if (end > start)
            parts.push_back(arg.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    // An all-separator argument ("--bench ,") used to decay silently to
    // the built-in default; make it a hard usage error instead.
    if (parts.empty())
        fatal("empty name list '", arg, "'");
    return parts;
}

void
usage()
{
    std::cout <<
        "usage: thermctl_run [--bench NAME[,NAME...] | --trace PATH]\n"
        "                    [--policy none|toggle1|toggle2|M|P|PI|PID|\n"
        "                     throttle|spec-ctrl|vf-scaling|percore-PID|\n"
        "                     adj-integral[,...]]\n"
        "                    [--warmup N] [--cycles N] [--setpoint T]\n"
        "                    [--sample N] [--cores N] [--coupling R]\n"
        "                    [--budget W]\n"
        "                    [--budget-policy uniform|demand|headroom]\n"
        "                    [--jobs N] [--cache-dir PATH]\n"
        "                    [--no-cache] [--csv PATH]\n"
        "                    [--trace-temps PATH] [--list]\n";
}

void
printResult(const RunResult &r, std::uint64_t cycles)
{
    std::cout << "benchmark     : " << r.benchmark << "\n"
              << "policy        : " << r.policy << "\n"
              << "cycles        : " << cycles << "\n"
              << "performance   : " << r.ipc << " (IPC " << r.raw_ipc
              << ")\n"
              << "avg power     : " << r.avg_power << " W\n"
              << "max temp      : " << r.max_temperature << " C\n"
              << "emergency     : "
              << formatPercent(r.emergency_fraction, 3) << "\n"
              << "stress        : " << formatPercent(r.stress_fraction, 1)
              << "\n"
              << "mean duty     : " << r.mean_duty << "\n";
}

void
appendCsv(const std::string &csv_path, const RunResult &r,
          std::uint64_t cycles)
{
    const bool fresh = [&] {
        std::ifstream probe(csv_path);
        return !probe.good();
    }();
    std::ofstream csv(csv_path, std::ios::app);
    if (!csv)
        fatal("cannot open ", csv_path);
    if (fresh) {
        csv << "benchmark,policy,cycles,performance,avg_power,"
               "max_temp,emergency_frac,stress_frac\n";
    }
    csv << r.benchmark << ',' << r.policy << ',' << cycles << ','
        << r.ipc << ',' << r.avg_power << ',' << r.max_temperature << ','
        << r.emergency_fraction << ',' << r.stress_fraction << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    SimConfig cfg;
    std::vector<std::string> benches;
    std::vector<std::string> policies;
    std::uint64_t warmup = 300000;
    std::uint64_t cycles = 1000000;
    std::string csv_path;
    std::string temps_path;
    SweepOptions sweep_opts;
    const char *no_cache_env = std::getenv("THERMCTL_NO_CACHE");
    sweep_opts.use_cache = !(no_cache_env && no_cache_env[0] == '1');

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        try {
            if (arg == "--bench") {
                benches = splitList(next());
            } else if (arg == "--trace") {
                cfg.trace_path = next();
            } else if (arg == "--policy") {
                policies = splitList(next());
            } else if (arg == "--warmup") {
                warmup = std::stoull(next());
            } else if (arg == "--cycles") {
                cycles = std::stoull(next());
            } else if (arg == "--setpoint") {
                cfg.policy.ct_setpoint = std::stod(next());
                cfg.policy.ct_range_low = cfg.policy.ct_setpoint - 0.2;
            } else if (arg == "--sample") {
                cfg.dtm.sample_interval = std::stoull(next());
            } else if (arg == "--cores") {
                const unsigned long v = std::stoul(next());
                if (v < 1 || v > kMaxCores)
                    fatal("--cores must be in [1, ", kMaxCores, "]");
                cfg.multicore.num_cores =
                    static_cast<std::uint32_t>(v);
            } else if (arg == "--coupling") {
                cfg.multicore.coupling_resistance = std::stod(next());
            } else if (arg == "--budget") {
                cfg.multicore.chip_budget = std::stod(next());
            } else if (arg == "--budget-policy") {
                const std::string name = next();
                if (!parseBudgetPolicy(name,
                                       cfg.multicore.budget_policy)) {
                    fatal("unknown budget policy '", name,
                          "' (expected uniform|demand|headroom)");
                }
            } else if (arg == "--jobs") {
                const long v = std::stol(next());
                if (v < 1)
                    fatal("--jobs must be >= 1");
                sweep_opts.jobs = static_cast<unsigned>(v);
            } else if (arg == "--cache-dir") {
                sweep_opts.cache_dir = next();
            } else if (arg == "--no-cache") {
                sweep_opts.use_cache = false;
            } else if (arg == "--csv") {
                csv_path = next();
            } else if (arg == "--trace-temps") {
                temps_path = next();
            } else if (arg == "--list") {
                for (const auto &name : specProfileNames())
                    std::cout << name << "\n";
                return 0;
            } else if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else {
                usage();
                fatal("unknown option ", arg);
            }
        } catch (const FatalError &e) {
            std::cerr << e.what() << "\n";
            return 2;
        }
    }

    try {
        multicore::ensureBackendRegistered();
        if (benches.empty())
            benches = {"186.crafty"};
        if (policies.empty())
            policies = {std::string(
                dtmPolicyKindName(DtmPolicyKind::None))};

        const bool direct = !temps_path.empty() || !cfg.trace_path.empty();
        if (direct && (benches.size() > 1 || policies.size() > 1))
            fatal("--trace/--trace-temps take a single benchmark and "
                  "policy");

        RunProtocol proto;
        proto.warmup_cycles = warmup;
        proto.measure_cycles = cycles;

        if (direct) {
            // The probe/trace path needs a live Simulator, so it bypasses
            // the sweep engine (and its cache).
            if (cfg.trace_path.empty())
                cfg.workload = specProfile(benches.front());
            cfg.policy.kind = parsePolicy(policies.front());
            if (needsMulticoreEngine(cfg))
                fatal("--trace/--trace-temps probe the single-core "
                      "Simulator; they do not support multicore "
                      "configs or policies");
            Simulator sim(cfg);

            std::ofstream temps_out;
            if (!temps_path.empty()) {
                temps_out.open(temps_path);
                if (!temps_out)
                    fatal("cannot open ", temps_path);
                temps_out << "cycle";
                for (std::size_t i = 0; i < kNumHotspotStructures; ++i)
                    temps_out
                        << ','
                        << structureName(static_cast<StructureId>(i));
                temps_out << "\n";
                sim.setProbe(
                    [&](const Simulator &s, Cycle now) {
                        temps_out << now;
                        for (std::size_t i = 0;
                             i < kNumHotspotStructures; ++i) {
                            temps_out
                                << ','
                                << s.thermal().temperatures().value[i];
                        }
                        temps_out << "\n";
                    },
                    2000);
            }

            sim.warmUp(warmup);
            sim.run(cycles);

            const auto &dtm = sim.dtm().stats();
            RunResult r;
            r.benchmark = cfg.trace_path.empty() ? cfg.workload.name
                                                 : cfg.trace_path;
            r.policy = dtmPolicyKindName(cfg.policy.kind);
            r.ipc = sim.measuredPerformance();
            r.raw_ipc = sim.measuredIpc();
            r.avg_power = sim.stats().avgPower();
            r.max_temperature = dtm.max_temperature;
            r.emergency_fraction = dtm.emergencyFraction();
            r.stress_fraction = dtm.stressFraction();
            r.mean_duty = dtm.samples
                ? dtm.duty_sum / double(dtm.samples)
                : 1.0;
            printResult(r, cycles);
            if (!csv_path.empty())
                appendCsv(csv_path, r, cycles);
            return 0;
        }

        SweepSpec spec;
        spec.protocol(proto).base(cfg);
        for (const auto &name : benches)
            spec.workload(specProfile(name));
        for (const auto &name : policies) {
            DtmPolicySettings s = cfg.policy;
            s.kind = parsePolicy(name);
            spec.policy(s, name);
        }

        SweepEngine engine(sweep_opts);
        const SweepResults res = engine.run(spec);

        bool first = true;
        for (const auto &oc : res.outcomes()) {
            if (!first)
                std::cout << "\n";
            first = false;
            printResult(oc.result, cycles);
            if (!csv_path.empty())
                appendCsv(csv_path, oc.result, cycles);
        }
        if (res.size() > 1) {
            std::cout << "\nsweep: " << res.size() << " points, "
                      << res.simulated() << " simulated, "
                      << res.cacheHits() << " cached\n";
        }
        return 0;
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
}
