/**
 * @file
 * thermctl_run — command-line front end for single simulations.
 *
 * Usage:
 *   thermctl_run [options]
 *     --bench NAME       benchmark profile (default 186.crafty); any of
 *                        the 18 SPEC2000-like names, with or without
 *                        the numeric prefix
 *     --trace PATH       replay a recorded micro-op trace instead
 *     --policy NAME      none|toggle1|toggle2|M|P|PI|PID|throttle|
 *                        spec-ctrl|vf-scaling   (default none)
 *     --warmup N         warm-up cycles (default 300000)
 *     --cycles N         measured cycles (default 1000000)
 *     --setpoint T       CT setpoint in C (default 111.6)
 *     --sample N         controller sampling interval (default 1000)
 *     --csv PATH         append a one-line CSV record of the results
 *     --trace-temps PATH write a temperature time series (CSV)
 *     --list             list benchmark profiles and exit
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/logging.hh"
#include "common/table.hh"
#include "sim/simulator.hh"
#include "workload/spec_profiles.hh"

using namespace thermctl;

namespace
{

DtmPolicyKind
parsePolicy(const std::string &name)
{
    for (DtmPolicyKind kind :
         {DtmPolicyKind::None, DtmPolicyKind::Toggle1,
          DtmPolicyKind::Toggle2, DtmPolicyKind::Manual,
          DtmPolicyKind::P, DtmPolicyKind::PI, DtmPolicyKind::PID,
          DtmPolicyKind::Throttle, DtmPolicyKind::SpecControl,
          DtmPolicyKind::VfScale}) {
        if (name == dtmPolicyKindName(kind))
            return kind;
    }
    fatal("unknown policy '", name, "'");
}

void
usage()
{
    std::cout <<
        "usage: thermctl_run [--bench NAME | --trace PATH]\n"
        "                    [--policy none|toggle1|toggle2|M|P|PI|PID|\n"
        "                     throttle|spec-ctrl|vf-scaling]\n"
        "                    [--warmup N] [--cycles N] [--setpoint T]\n"
        "                    [--sample N] [--csv PATH]\n"
        "                    [--trace-temps PATH] [--list]\n";
}

} // namespace

int
main(int argc, char **argv)
{
    SimConfig cfg;
    cfg.workload = specProfile("186.crafty");
    std::uint64_t warmup = 300000;
    std::uint64_t cycles = 1000000;
    std::string csv_path;
    std::string temps_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        try {
            if (arg == "--bench") {
                cfg.workload = specProfile(next());
            } else if (arg == "--trace") {
                cfg.trace_path = next();
            } else if (arg == "--policy") {
                cfg.policy.kind = parsePolicy(next());
            } else if (arg == "--warmup") {
                warmup = std::stoull(next());
            } else if (arg == "--cycles") {
                cycles = std::stoull(next());
            } else if (arg == "--setpoint") {
                cfg.policy.ct_setpoint = std::stod(next());
                cfg.policy.ct_range_low = cfg.policy.ct_setpoint - 0.2;
            } else if (arg == "--sample") {
                cfg.dtm.sample_interval = std::stoull(next());
            } else if (arg == "--csv") {
                csv_path = next();
            } else if (arg == "--trace-temps") {
                temps_path = next();
            } else if (arg == "--list") {
                for (const auto &name : specProfileNames())
                    std::cout << name << "\n";
                return 0;
            } else if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else {
                usage();
                fatal("unknown option ", arg);
            }
        } catch (const FatalError &e) {
            std::cerr << e.what() << "\n";
            return 2;
        }
    }

    try {
        Simulator sim(cfg);

        std::ofstream temps_out;
        if (!temps_path.empty()) {
            temps_out.open(temps_path);
            if (!temps_out)
                fatal("cannot open ", temps_path);
            temps_out << "cycle";
            for (std::size_t i = 0; i < kNumHotspotStructures; ++i)
                temps_out << ','
                          << structureName(static_cast<StructureId>(i));
            temps_out << "\n";
            sim.setProbe(
                [&](const Simulator &s, Cycle now) {
                    temps_out << now;
                    for (std::size_t i = 0; i < kNumHotspotStructures;
                         ++i) {
                        temps_out << ','
                                  << s.thermal().temperatures().value[i];
                    }
                    temps_out << "\n";
                },
                2000);
        }

        sim.warmUp(warmup);
        sim.run(cycles);

        const auto &dtm = sim.dtm().stats();
        const std::string bench = cfg.trace_path.empty()
            ? cfg.workload.name
            : cfg.trace_path;
        std::cout << "benchmark     : " << bench << "\n"
                  << "policy        : "
                  << dtmPolicyKindName(cfg.policy.kind) << "\n"
                  << "cycles        : " << cycles << "\n"
                  << "performance   : " << sim.measuredPerformance()
                  << " (IPC " << sim.measuredIpc() << ")\n"
                  << "avg power     : " << sim.stats().avgPower()
                  << " W\n"
                  << "max temp      : " << dtm.max_temperature << " C\n"
                  << "emergency     : "
                  << formatPercent(dtm.emergencyFraction(), 3) << "\n"
                  << "stress        : "
                  << formatPercent(dtm.stressFraction(), 1) << "\n"
                  << "mean duty     : "
                  << (dtm.samples
                          ? dtm.duty_sum / double(dtm.samples)
                          : 1.0)
                  << "\n";

        if (!csv_path.empty()) {
            const bool fresh = [&] {
                std::ifstream probe(csv_path);
                return !probe.good();
            }();
            std::ofstream csv(csv_path, std::ios::app);
            if (!csv)
                fatal("cannot open ", csv_path);
            if (fresh) {
                csv << "benchmark,policy,cycles,performance,avg_power,"
                       "max_temp,emergency_frac,stress_frac\n";
            }
            csv << bench << ','
                << dtmPolicyKindName(cfg.policy.kind) << ',' << cycles
                << ',' << sim.measuredPerformance() << ','
                << sim.stats().avgPower() << ',' << dtm.max_temperature
                << ',' << dtm.emergencyFraction() << ','
                << dtm.stressFraction() << "\n";
        }
        return 0;
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
}
