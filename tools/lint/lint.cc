#include "lint/lint.hh"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace thermctl::lint
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size()
           && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
contains(std::string_view s, std::string_view needle)
{
    return s.find(needle) != std::string_view::npos;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

} // namespace

// -------------------------------------------------------------- tokenizer

std::vector<Token>
tokenize(std::string_view src)
{
    std::vector<Token> tokens;
    std::size_t i = 0;
    int line = 1;

    auto advance = [&](std::size_t n) {
        for (std::size_t k = 0; k < n && i < src.size(); ++k, ++i) {
            if (src[i] == '\n')
                ++line;
        }
    };

    while (i < src.size()) {
        char c = src[i];

        if (c == '\n' || c == ' ' || c == '\t' || c == '\r' || c == '\v'
            || c == '\f') {
            advance(1);
            continue;
        }

        // Line comment.
        if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
            while (i < src.size() && src[i] != '\n')
                advance(1);
            continue;
        }

        // Block comment.
        if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
            advance(2);
            while (i < src.size()
                   && !(src[i] == '*' && i + 1 < src.size()
                        && src[i + 1] == '/'))
                advance(1);
            advance(2); // trailing "*/" (no-op at EOF)
            continue;
        }

        // Raw string literal: R"delim( ... )delim", with an optional
        // encoding prefix (u8R, uR, UR, LR). The prefix must be
        // consumed here: lexing it as an identifier would leave the
        // raw body to the escape-aware scanner, which desynchronizes
        // on any embedded quote.
        std::size_t raw_r = std::string_view::npos;
        if (c == 'R' && i + 1 < src.size() && src[i + 1] == '"')
            raw_r = i;
        else if ((c == 'u' || c == 'U' || c == 'L') && i + 2 < src.size()
                 && src[i + 1] == 'R' && src[i + 2] == '"')
            raw_r = i + 1;
        else if (c == 'u' && i + 3 < src.size() && src[i + 1] == '8'
                 && src[i + 2] == 'R' && src[i + 3] == '"')
            raw_r = i + 2;
        if (raw_r != std::string_view::npos) {
            advance(raw_r - i); // skip the encoding prefix, if any
            int start_line = line;
            std::size_t d = i + 2;
            while (d < src.size() && src[d] != '(' && src[d] != '"'
                   && src[d] != '\n')
                ++d;
            if (d < src.size() && src[d] == '(') {
                std::string closer = ")";
                closer.append(src.substr(i + 2, d - (i + 2)));
                closer.push_back('"');
                advance(d + 1 - i);
                std::size_t end = src.find(closer, i);
                std::string body(
                    src.substr(i, end == std::string_view::npos
                                      ? src.size() - i
                                      : end - i));
                advance(body.size());
                advance(std::min(closer.size(), src.size() - i));
                tokens.push_back(
                    {Token::Kind::String, std::move(body), start_line});
                continue;
            }
            // "R" not followed by a raw literal: fall through as ident.
        }

        // Ordinary string / char literal (escape-aware).
        if (c == '"' || c == '\'') {
            int start_line = line;
            char quote = c;
            advance(1);
            std::string body;
            while (i < src.size() && src[i] != quote) {
                if (src[i] == '\\' && i + 1 < src.size()) {
                    body.push_back(src[i]);
                    advance(1);
                }
                body.push_back(src[i]);
                advance(1);
            }
            advance(1); // closing quote (no-op at EOF)
            tokens.push_back({quote == '"' ? Token::Kind::String
                                           : Token::Kind::Char,
                              std::move(body), start_line});
            continue;
        }

        // Identifier / keyword.
        if (isIdentStart(c)) {
            int start_line = line;
            std::size_t start = i;
            while (i < src.size() && isIdentChar(src[i]))
                advance(1);
            tokens.push_back({Token::Kind::Identifier,
                              std::string(src.substr(start, i - start)),
                              start_line});
            continue;
        }

        // Number (loose: digits plus the usual suffix/exponent soup).
        if (std::isdigit(static_cast<unsigned char>(c))
            || (c == '.' && i + 1 < src.size()
                && std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
            int start_line = line;
            std::size_t start = i;
            while (i < src.size()
                   && (isIdentChar(src[i]) || src[i] == '.'
                       || (src[i] == '\'' && i + 1 < src.size()
                           && isIdentChar(src[i + 1]))
                       || ((src[i] == '+' || src[i] == '-') && i > start
                           && (src[i - 1] == 'e' || src[i - 1] == 'E'
                               || src[i - 1] == 'p' || src[i - 1] == 'P'))))
                advance(1);
            tokens.push_back({Token::Kind::Number,
                              std::string(src.substr(start, i - start)),
                              start_line});
            continue;
        }

        // "::" kept whole so "std :: mutex" matching stays trivial.
        if (c == ':' && i + 1 < src.size() && src[i + 1] == ':') {
            tokens.push_back({Token::Kind::Punct, "::", line});
            advance(2);
            continue;
        }

        tokens.push_back({Token::Kind::Punct, std::string(1, c), line});
        advance(1);
    }
    return tokens;
}

std::vector<Include>
scanIncludes(std::string_view src)
{
    std::vector<Include> includes;
    int line = 0;
    std::size_t pos = 0;
    while (pos <= src.size()) {
        ++line;
        std::size_t eol = src.find('\n', pos);
        std::string_view ln = src.substr(
            pos, eol == std::string_view::npos ? src.size() - pos : eol - pos);
        pos = eol == std::string_view::npos ? src.size() + 1 : eol + 1;

        std::size_t p = ln.find_first_not_of(" \t");
        if (p == std::string_view::npos || ln[p] != '#')
            continue;
        p = ln.find_first_not_of(" \t", p + 1);
        if (p == std::string_view::npos
            || ln.compare(p, 7, "include") != 0)
            continue;
        p = ln.find_first_not_of(" \t", p + 7);
        if (p == std::string_view::npos)
            continue;
        char open = ln[p];
        char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
        if (close == '\0')
            continue;
        std::size_t end = ln.find(close, p + 1);
        if (end == std::string_view::npos)
            continue;
        includes.push_back({std::string(ln.substr(p + 1, end - p - 1)),
                            open == '<', line});
    }
    return includes;
}

// -------------------------------------------------------------- allowlist

const std::vector<std::string> &
ruleIds()
{
    static const std::vector<std::string> ids = {
        "raw-double-param",  "using-namespace-header",
        "reader-bounds",     "naked-mutex",
        "missing-thread-annotations", "fault-point-scope",
    };
    return ids;
}

bool
Allowlist::parse(std::string_view text, std::string &error)
{
    return parse(text, ruleIds(), error);
}

bool
Allowlist::parse(std::string_view text,
                 const std::vector<std::string> &valid_ids,
                 std::string &error)
{
    entries_.clear();
    int line = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        ++line;
        std::size_t eol = text.find('\n', pos);
        std::string ln(text.substr(pos, eol == std::string_view::npos
                                            ? text.size() - pos
                                            : eol - pos));
        pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;

        std::istringstream fields(ln);
        std::string rule, suffix;
        fields >> rule;
        if (rule.empty() || rule[0] == '#')
            continue;
        if (std::find(valid_ids.begin(), valid_ids.end(), rule)
            == valid_ids.end()) {
            error = "allowlist line " + std::to_string(line)
                    + ": unknown rule id '" + rule + "'";
            return false;
        }
        fields >> suffix;
        if (suffix.empty()) {
            error = "allowlist line " + std::to_string(line) + ": rule '"
                    + rule + "' is missing a path suffix";
            return false;
        }
        entries_.push_back({rule, suffix, false});
    }
    return true;
}

bool
Allowlist::allows(const Finding &f) const
{
    for (const Entry &e : entries_) {
        if (e.rule == f.rule && endsWith(f.file, e.path_suffix)) {
            e.used = true;
            return true;
        }
    }
    return false;
}

std::vector<std::string>
Allowlist::unusedEntries() const
{
    std::vector<std::string> out;
    for (const Entry &e : entries_)
        if (!e.used)
            out.push_back(e.rule + " " + e.path_suffix);
    return out;
}

// ------------------------------------------------------------------ rules

namespace
{

bool
isHeaderPath(std::string_view path)
{
    return endsWith(path, ".hh") || endsWith(path, ".hpp")
           || endsWith(path, ".h");
}

bool
matchesStdName(const std::vector<Token> &toks, std::size_t i,
               std::string_view name)
{
    return i + 2 < toks.size() && toks[i].kind == Token::Kind::Identifier
           && toks[i].text == "std" && toks[i + 1].text == "::"
           && toks[i + 2].kind == Token::Kind::Identifier
           && toks[i + 2].text == name;
}

/**
 * raw-double-param: in public thermal/power/control/dtm headers, a
 * `double` parameter whose name smells like a physical quantity should
 * be one of the units.hh strong types instead. Parameters are
 * identified as `double <ident>` at parenthesis depth > 0; struct
 * members and locals at depth 0 are out of scope for this rule.
 */
void
checkRawDoubleParam(const std::string &path, const std::vector<Token> &toks,
                    std::vector<Finding> &findings)
{
    static constexpr std::array<std::string_view, 10> kQuantity = {
        "temp",  "kelvin", "celsius", "power",    "watt",
        "resis", "capac",  "setpoint", "joule",   "heat",
    };

    int depth = 0;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind == Token::Kind::Punct) {
            if (t.text == "(")
                ++depth;
            else if (t.text == ")")
                depth = std::max(0, depth - 1);
            continue;
        }
        if (depth == 0 || t.kind != Token::Kind::Identifier
            || t.text != "double")
            continue;
        // Accept `double &name` / `double *name` / `double const name`.
        std::size_t j = i + 1;
        while (j < toks.size()
               && ((toks[j].kind == Token::Kind::Punct
                    && (toks[j].text == "&" || toks[j].text == "*"))
                   || (toks[j].kind == Token::Kind::Identifier
                       && toks[j].text == "const")))
            ++j;
        if (j >= toks.size() || toks[j].kind != Token::Kind::Identifier)
            continue;
        std::string name = toLower(toks[j].text);
        for (std::string_view q : kQuantity) {
            if (contains(name, q)) {
                findings.push_back(
                    {path, t.line, "raw-double-param",
                     "parameter '" + toks[j].text
                         + "' is a raw double; use a units.hh strong type "
                           "(Kelvin, Celsius, Watts, KelvinPerWatt, "
                           "JoulePerKelvin, ...) so the unit is part of "
                           "the signature"});
                break;
            }
        }
    }
}

/** using-namespace-header: never at header scope. */
void
checkUsingNamespace(const std::string &path, const std::vector<Token> &toks,
                    std::vector<Finding> &findings)
{
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind == Token::Kind::Identifier
            && toks[i].text == "using"
            && toks[i + 1].kind == Token::Kind::Identifier
            && toks[i + 1].text == "namespace") {
            findings.push_back(
                {path, toks[i].line, "using-namespace-header",
                 "'using namespace' in a header leaks into every includer; "
                 "qualify names or use a local alias instead"});
        }
    }
}

/**
 * reader-bounds: decode code built on ByteReader must consult the
 * reader's failure state (ok()/atEnd()); a decoder that never checks is
 * trusting hostile length prefixes.
 */
void
checkReaderBounds(const std::string &path, const std::vector<Token> &toks,
                  std::vector<Finding> &findings)
{
    int first_reader_line = 0;
    bool checks_bounds = false;
    for (const Token &t : toks) {
        if (t.kind != Token::Kind::Identifier)
            continue;
        if (t.text == "ByteReader" && first_reader_line == 0)
            first_reader_line = t.line;
        // ok_/pos_ cover ByteReader's own implementation file, which
        // maintains the failure state rather than querying it.
        if (t.text == "ok" || t.text == "atEnd" || t.text == "remaining"
            || t.text == "ok_")
            checks_bounds = true;
    }
    if (first_reader_line != 0 && !checks_bounds) {
        findings.push_back(
            {path, first_reader_line, "reader-bounds",
             "file decodes with ByteReader but never checks ok()/atEnd(); "
             "length-check before trusting any decoded count"});
    }
}

/**
 * naked-mutex: all locking in src/ goes through the annotated wrappers
 * (thermctl::Mutex / MutexLock / CondVar in common/mutex.hh) so Clang
 * Thread Safety Analysis can see it.
 */
void
checkNakedMutex(const std::string &path, const std::vector<Token> &toks,
                const std::vector<Include> &includes,
                std::vector<Finding> &findings)
{
    static constexpr std::array<std::string_view, 11> kBanned = {
        "mutex",       "timed_mutex",  "recursive_mutex",
        "shared_mutex", "lock_guard",  "unique_lock",
        "scoped_lock", "shared_lock",  "condition_variable",
        "condition_variable_any", "call_once",
    };

    for (const Include &inc : includes) {
        if (inc.system
            && (inc.path == "mutex" || inc.path == "shared_mutex"
                || inc.path == "condition_variable")) {
            findings.push_back(
                {path, inc.line, "naked-mutex",
                 "#include <" + inc.path
                     + "> outside common/mutex.hh; use thermctl::Mutex / "
                       "MutexLock / CondVar so thread-safety analysis "
                       "covers the locking"});
        }
    }
    for (std::size_t i = 0; i < toks.size(); ++i) {
        for (std::string_view b : kBanned) {
            if (matchesStdName(toks, i, b)) {
                findings.push_back(
                    {path, toks[i].line, "naked-mutex",
                     "std::" + std::string(b)
                         + " outside common/mutex.hh; use thermctl::Mutex "
                           "/ MutexLock / CondVar from common/mutex.hh"});
                break;
            }
        }
    }
}

/**
 * missing-thread-annotations: a file that spawns std::thread is part of
 * the concurrent stack and must include the annotated primitives so its
 * shared state can be GUARDED_BY-annotated.
 */
void
checkThreadAnnotations(const std::string &path,
                       const std::vector<Token> &toks,
                       const std::vector<Include> &includes,
                       std::vector<Finding> &findings)
{
    int thread_line = 0;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (matchesStdName(toks, i, "thread")
            || matchesStdName(toks, i, "jthread")) {
            thread_line = toks[i].line;
            break;
        }
    }
    if (thread_line == 0)
        return;
    for (const Include &inc : includes) {
        if (endsWith(inc.path, "common/mutex.hh")
            || endsWith(inc.path, "common/thread_annotations.hh"))
            return;
    }
    findings.push_back(
        {path, thread_line, "missing-thread-annotations",
         "file spawns std::thread but includes neither common/mutex.hh "
         "nor common/thread_annotations.hh; shared state must be "
         "annotatable"});
}

/**
 * fault-point-scope: THERMCTL_FAULT_POINT probes are product-code
 * instrumentation and live only under src/. Tests and benches induce
 * failures by arming a FaultPlan against the probes that already exist;
 * a probe defined in test code would skew the faults-off build and is
 * never exercised in production.
 */
void
checkFaultPointScope(const std::string &path,
                     const std::vector<Token> &toks,
                     std::vector<Finding> &findings)
{
    for (const Token &t : toks) {
        if (t.kind == Token::Kind::Identifier
            && t.text == "THERMCTL_FAULT_POINT") {
            findings.push_back(
                {path, t.line, "fault-point-scope",
                 "THERMCTL_FAULT_POINT outside src/; fault probes are "
                 "product instrumentation — tests arm a FaultPlan "
                 "against existing probes instead of adding their own"});
        }
    }
}

} // namespace

std::vector<Finding>
lintFile(const std::string &path, std::string_view content)
{
    std::vector<Finding> findings;
    const std::vector<Token> toks = tokenize(content);
    const std::vector<Include> includes = scanIncludes(content);
    const bool header = isHeaderPath(path);
    const bool in_src = contains(path, "src/");

    if (header
        && (contains(path, "src/thermal/") || contains(path, "src/power/")
            || contains(path, "src/control/")
            || contains(path, "src/dtm/")))
        checkRawDoubleParam(path, toks, findings);

    if (header)
        checkUsingNamespace(path, toks, findings);

    if (contains(path, "src/serve/")
        || contains(path, "src/common/serialize"))
        checkReaderBounds(path, toks, findings);

    if (in_src && !endsWith(path, "common/mutex.hh")
        && !endsWith(path, "common/thread_annotations.hh"))
        checkNakedMutex(path, toks, includes, findings);

    if (in_src)
        checkThreadAnnotations(path, toks, includes, findings);

    if (!in_src)
        checkFaultPointScope(path, toks, findings);

    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.line < b.line;
                     });
    return findings;
}

// ----------------------------------------------------------------- output

std::string
formatText(const std::vector<Finding> &findings)
{
    std::string out;
    for (const Finding &f : findings) {
        out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] "
               + f.message + "\n";
    }
    return out;
}

namespace
{

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
formatJson(const std::vector<Finding> &findings)
{
    std::string out = "[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        if (i)
            out += ",";
        out += "\n  {\"file\": \"" + jsonEscape(f.file)
               + "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \""
               + jsonEscape(f.rule) + "\", \"message\": \""
               + jsonEscape(f.message) + "\"}";
    }
    out += findings.empty() ? "]\n" : "\n]\n";
    return out;
}

} // namespace thermctl::lint
