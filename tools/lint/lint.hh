/**
 * @file
 * thermctl-lint core: a lightweight C++ tokenizer and the project rules
 * it enforces over the thermctl source tree.
 *
 * The linter checks the contracts the codebase *claims* to follow but
 * that no compiler enforces:
 *
 *   raw-double-param            public thermal/power/control/dtm headers
 *                               take units.hh strong types (Celsius,
 *                               Watts, KelvinPerWatt, ...) rather than
 *                               raw `double` temperature/power/
 *                               resistance parameters
 *   using-namespace-header      no `using namespace` at header scope
 *   reader-bounds               serve/ and serialize code that decodes
 *                               with ByteReader checks ok()/atEnd()
 *                               (the bounds idiom), never trusts
 *                               lengths blindly
 *   naked-mutex                 no std::mutex / std::lock_guard /
 *                               std::condition_variable outside the
 *                               annotated wrappers in common/mutex.hh
 *   missing-thread-annotations  every file spawning std::thread
 *                               includes the annotation headers
 *                               (common/mutex.hh or
 *                               common/thread_annotations.hh)
 *   fault-point-scope           THERMCTL_FAULT_POINT probes appear only
 *                               under src/ — tests and benches arm a
 *                               FaultPlan against existing probes
 *                               rather than defining their own
 *
 * Deliberately libclang-free: a token scan with comment/string
 * stripping is robust enough for these rules, keeps the tool a
 * dependency-free part of the ordinary build, and runs in milliseconds
 * over the whole tree (scripts/check.sh stage "lint").
 *
 * Grandfathered exceptions live in an allowlist file (one
 * `rule path-suffix justification` entry per line); see
 * Allowlist::parse. DESIGN.md §11 documents the workflow.
 */

#ifndef THERMCTL_TOOLS_LINT_LINT_HH
#define THERMCTL_TOOLS_LINT_LINT_HH

#include <string>
#include <string_view>
#include <vector>

namespace thermctl::lint
{

/** One lexed token (comments and whitespace are dropped). */
struct Token
{
    enum class Kind
    {
        Identifier, ///< [A-Za-z_][A-Za-z0-9_]*
        Number,
        String, ///< text is the literal's *contents* (quotes stripped)
        Char,
        Punct, ///< single punctuation char, except "::" kept whole
    };

    Kind kind = Kind::Punct;
    std::string text;
    int line = 1; ///< 1-based line of the token's first character
};

/**
 * Lex C++ source into tokens: strips // and block comments, collapses
 * string/char literals (escape- and raw-string-aware) into single
 * tokens, and keeps "::" as one punctuation token. Never fails —
 * unterminated constructs simply end at EOF.
 */
std::vector<Token> tokenize(std::string_view src);

/** A `#include` seen in a file. */
struct Include
{
    std::string path; ///< header as written, without quotes/brackets
    bool system = false; ///< <...> rather than "..."
    int line = 1;
};

/** Scan raw source for #include directives (tokenizer-independent). */
std::vector<Include> scanIncludes(std::string_view src);

/** One rule violation. */
struct Finding
{
    std::string file; ///< path as given to the linter
    int line = 1;
    std::string rule;    ///< stable rule id, e.g. "naked-mutex"
    std::string message; ///< pointed, single-line diagnostic
};

/** Grandfathered exceptions: `rule path-suffix justification...`. */
class Allowlist
{
  public:
    /**
     * Parse the allowlist text. Lines are `rule path-suffix
     * [justification...]`; blank lines and `#` comments are ignored.
     * @return false and set `error` on a malformed line (missing
     * path-suffix, unknown rule id).
     */
    bool parse(std::string_view text, std::string &error);

    /**
     * parse() validating rule ids against `valid_ids` instead of the
     * linter's own ruleIds() — the analyzer (tools/analyze) reuses this
     * baseline mechanism with its own rule vocabulary.
     */
    bool parse(std::string_view text,
               const std::vector<std::string> &valid_ids,
               std::string &error);

    /** @return true when `f` matches a grandfathered entry. */
    bool allows(const Finding &f) const;

    /** Entries never matched by any finding (likely stale). */
    std::vector<std::string> unusedEntries() const;

    std::size_t size() const { return entries_.size(); }

  private:
    struct Entry
    {
        std::string rule;
        std::string path_suffix;
        mutable bool used = false;
    };
    std::vector<Entry> entries_;
};

/** @return every known rule id (for allowlist validation / --list). */
const std::vector<std::string> &ruleIds();

/**
 * Lint one file's contents. `path` selects which rules apply (header
 * vs. implementation, directory under src/); use the repo-relative
 * path so allowlist suffixes are stable.
 */
std::vector<Finding> lintFile(const std::string &path,
                              std::string_view content);

/** Render findings as `file:line: [rule] message` lines. */
std::string formatText(const std::vector<Finding> &findings);

/** Render findings as a machine-readable JSON array. */
std::string formatJson(const std::vector<Finding> &findings);

} // namespace thermctl::lint

#endif // THERMCTL_TOOLS_LINT_LINT_HH
