/**
 * @file
 * thermctl_client — command-line client for a running thermctl_serve.
 *
 * Usage:
 *   thermctl_client [options]
 *     --socket ENDPOINT  "unix:PATH", "tcp:HOST:PORT", or a bare socket
 *                        path (default: the daemon's default socket)
 *     --bench NAMES      comma-separated benchmark profiles (default
 *                        186.crafty)
 *     --policy NAMES     comma-separated policy names (default none)
 *     --warmup N         warm-up cycles (default 300000)
 *     --cycles N         measured cycles (default 1000000)
 *     --setpoint T       CT setpoint in C (0 = server default)
 *     --sample N         controller sampling interval (0 = default)
 *     --cores N          number of cores (0 = server default)
 *     --coupling R       inter-core coupling resistance in K/W
 *     --budget W         chip power budget in W (0 = server default)
 *     --budget-policy P  uniform|demand|headroom
 *     --deadline MS      per-request deadline; expired requests fail
 *                        with a typed deadline error (default: none)
 *     --csv PATH         append one CSV record per result
 *     --cache-query      ask whether the point is cached; no simulation
 *     --stats            print server counters and exit
 *     --drain            ask the server to drain and shut down
 *     --retries N        attempts per request incl. the first (default 1
 *                        = no retries, exactly the plain client)
 *     --retry-base-ms N  backoff base sleep (default 50)
 *     --retry-deadline-ms N
 *                        total retry budget across attempts and sleeps
 *                        (default 0 = bounded by --retries alone)
 *     --fault-plan SPEC  arm the deterministic fault injector on the
 *                        client side (chaos testing; needs a
 *                        THERMCTL_FAULTS build)
 *
 * Result blocks are formatted exactly like thermctl_run so outputs can
 * be compared byte-for-byte. Server refusals (overloaded, draining,
 * deadline) exit 3; transport and usage errors exit 2.
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "fault/fault.hh"
#include "serve/connect.hh"
#include "serve/server.hh"
#include "sim/policy_factory.hh"

using namespace thermctl;
using namespace thermctl::serve;

namespace
{

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= arg.size()) {
        const std::size_t comma = arg.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? arg.size() : comma;
        if (end > start)
            parts.push_back(arg.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (parts.empty())
        fatal("empty name list '", arg, "'");
    return parts;
}

void
usage()
{
    std::cout <<
        "usage: thermctl_client [--socket ENDPOINT]\n"
        "                       [--bench NAME[,NAME...]]\n"
        "                       [--policy NAME[,NAME...]]\n"
        "                       [--warmup N] [--cycles N] [--setpoint T]\n"
        "                       [--sample N] [--cores N] [--coupling R]\n"
        "                       [--budget W]\n"
        "                       [--budget-policy uniform|demand|headroom]\n"
        "                       [--deadline MS] [--csv PATH]\n"
        "                       [--cache-query] [--stats] [--drain]\n"
        "                       [--retries N] [--retry-base-ms N]\n"
        "                       [--retry-deadline-ms N]\n"
        "                       [--fault-plan SPEC]\n";
}

/** Identical layout to thermctl_run's printResult (bit-compare safe). */
void
printResult(const RunResult &r, std::uint64_t cycles)
{
    std::cout << "benchmark     : " << r.benchmark << "\n"
              << "policy        : " << r.policy << "\n"
              << "cycles        : " << cycles << "\n"
              << "performance   : " << r.ipc << " (IPC " << r.raw_ipc
              << ")\n"
              << "avg power     : " << r.avg_power << " W\n"
              << "max temp      : " << r.max_temperature << " C\n"
              << "emergency     : "
              << formatPercent(r.emergency_fraction, 3) << "\n"
              << "stress        : " << formatPercent(r.stress_fraction, 1)
              << "\n"
              << "mean duty     : " << r.mean_duty << "\n";
}

void
appendCsv(const std::string &csv_path, const RunResult &r,
          std::uint64_t cycles)
{
    const bool fresh = [&] {
        std::ifstream probe(csv_path);
        return !probe.good();
    }();
    std::ofstream csv(csv_path, std::ios::app);
    if (!csv)
        fatal("cannot open ", csv_path);
    if (fresh) {
        csv << "benchmark,policy,cycles,performance,avg_power,"
               "max_temp,emergency_frac,stress_frac\n";
    }
    csv << r.benchmark << ',' << r.policy << ',' << cycles << ','
        << r.ipc << ',' << r.avg_power << ',' << r.max_temperature << ','
        << r.emergency_fraction << ',' << r.stress_fraction << "\n";
}

void
printStats(const StatsReply &s)
{
    std::cout << "requests_total      : " << s.requests_total << "\n"
              << "run_requests        : " << s.run_requests << "\n"
              << "sweep_requests      : " << s.sweep_requests << "\n"
              << "cache_queries       : " << s.cache_queries << "\n"
              << "points_submitted    : " << s.points_submitted << "\n"
              << "points_simulated    : " << s.points_simulated << "\n"
              << "cache_hits          : " << s.cache_hits << "\n"
              << "coalesced           : " << s.coalesced << "\n"
              << "rejected_overload   : " << s.rejected_overload << "\n"
              << "rejected_deadline   : " << s.rejected_deadline << "\n"
              << "failed              : " << s.failed << "\n"
              << "stalled             : " << s.stalled << "\n"
              << "queue_depth         : " << s.queue_depth << "\n"
              << "queue_high_water    : " << s.queue_high_water << "\n"
              << "connections_accepted: " << s.connections_accepted << "\n"
              << "active_connections  : " << s.active_connections << "\n"
              << "uptime_seconds      : " << s.uptime_seconds << "\n"
              << "latency_count       : " << s.latency_count << "\n"
              << "latency_mean_ms     : " << s.latency_mean_ms << "\n"
              << "latency_p50_ms      : " << s.latency_p50_ms << "\n"
              << "latency_p90_ms      : " << s.latency_p90_ms << "\n"
              << "latency_p99_ms      : " << s.latency_p99_ms << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string endpoint;
    std::vector<std::string> benches;
    std::vector<std::string> policies;
    PointSpec knobs;
    std::uint64_t deadline_ms = 0;
    std::string csv_path;
    bool do_cache_query = false;
    bool do_stats = false;
    bool do_drain = false;
    BackoffConfig backoff;
    backoff.max_attempts = 1; // default: exactly the plain client
    std::string fault_plan_spec;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    fatal("missing value for ", arg);
                return argv[++i];
            };
            if (arg == "--socket") {
                endpoint = next();
            } else if (arg == "--bench") {
                benches = splitList(next());
            } else if (arg == "--policy") {
                policies = splitList(next());
            } else if (arg == "--warmup") {
                knobs.warmup_cycles = std::stoull(next());
            } else if (arg == "--cycles") {
                knobs.measure_cycles = std::stoull(next());
            } else if (arg == "--setpoint") {
                knobs.ct_setpoint = std::stod(next());
            } else if (arg == "--sample") {
                knobs.sample_interval = std::stoull(next());
            } else if (arg == "--cores") {
                const unsigned long v = std::stoul(next());
                if (v > kMaxCores)
                    fatal("--cores must be <= ", kMaxCores);
                knobs.num_cores = static_cast<std::uint32_t>(v);
            } else if (arg == "--coupling") {
                knobs.coupling_r = std::stod(next());
            } else if (arg == "--budget") {
                knobs.chip_budget = std::stod(next());
            } else if (arg == "--budget-policy") {
                const std::string name = next();
                BudgetPolicy policy;
                if (!parseBudgetPolicy(name, policy)) {
                    fatal("unknown budget policy '", name,
                          "' (expected uniform|demand|headroom)");
                }
                knobs.budget_policy =
                    static_cast<std::uint8_t>(policy);
            } else if (arg == "--deadline") {
                deadline_ms = std::stoull(next());
            } else if (arg == "--csv") {
                csv_path = next();
            } else if (arg == "--retries") {
                const long v = std::stol(next());
                if (v < 1)
                    fatal("--retries must be >= 1");
                backoff.max_attempts = static_cast<std::uint32_t>(v);
            } else if (arg == "--retry-base-ms") {
                backoff.base_ms =
                    static_cast<std::uint32_t>(std::stoul(next()));
            } else if (arg == "--retry-deadline-ms") {
                backoff.deadline_ms = std::stoull(next());
            } else if (arg == "--fault-plan") {
                fault_plan_spec = next();
            } else if (arg == "--cache-query") {
                do_cache_query = true;
            } else if (arg == "--stats") {
                do_stats = true;
            } else if (arg == "--drain") {
                do_drain = true;
            } else if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else {
                usage();
                fatal("unknown option ", arg);
            }
        }

        if (endpoint.empty())
            endpoint = defaultSocketPath();
        if (benches.empty())
            benches = {"186.crafty"};
        if (policies.empty())
            policies = {"none"};

        if (!fault_plan_spec.empty()) {
#if defined(THERMCTL_FAULTS_ENABLED) && THERMCTL_FAULTS_ENABLED
            fault::FaultInjector::instance().arm(
                fault::FaultPlan::parse(fault_plan_spec));
#else
            fatal("--fault-plan needs a build with THERMCTL_FAULTS=ON "
                  "(fault points are compiled out of this binary)");
#endif
        }

        // One client for every command: connect() hides the plain vs
        // retrying split (the default --retries 1 is exactly the plain
        // client). Control-plane calls never retry; a transport failure
        // there throws FatalError and exits 2, as before.
        ClientOptions copts;
        copts.endpoint = endpoint;
        copts.retry = backoff.max_attempts > 1;
        copts.backoff = backoff;
        const std::unique_ptr<Client> client = serve::connect(copts);

        if (do_stats) {
            printStats(client->stats());
            return 0;
        }
        if (do_drain) {
            const bool was = client->drain();
            std::cout << (was ? "server was already draining\n"
                              : "drain requested\n");
            return 0;
        }
        if (do_cache_query) {
            if (benches.size() > 1 || policies.size() > 1)
                fatal("--cache-query takes a single benchmark and "
                      "policy");
            CacheQueryRequest req;
            req.point = knobs;
            req.point.benchmark = benches.front();
            req.point.policy = policies.front();
            const CacheQueryReply reply = client->cacheQuery(req);
            std::cout << (reply.cached ? "cached" : "not cached")
                      << " (digest " << std::hex << reply.digest
                      << std::dec << ")\n";
            return reply.cached ? 0 : 1;
        }

        std::vector<PointReply> points;
        if (benches.size() == 1 && policies.size() == 1) {
            RunRequest req;
            req.point = knobs;
            req.point.benchmark = benches.front();
            req.point.policy = policies.front();
            req.deadline_ms = deadline_ms;
            points.push_back(client->run(req));
        } else {
            SweepRequest req;
            req.benchmarks = benches;
            req.policies = policies;
            req.warmup_cycles = knobs.warmup_cycles;
            req.measure_cycles = knobs.measure_cycles;
            req.ct_setpoint = knobs.ct_setpoint;
            req.sample_interval = knobs.sample_interval;
            req.num_cores = knobs.num_cores;
            req.coupling_r = knobs.coupling_r;
            req.chip_budget = knobs.chip_budget;
            req.budget_policy = knobs.budget_policy;
            req.deadline_ms = deadline_ms;
            points = client->sweep(req).points;
        }

        int failures = 0;
        bool transport_failure = false;
        bool first = true;
        for (const auto &p : points) {
            if (p.error != ServeError::None) {
                std::cerr << "thermctl_client: "
                          << serveErrorName(p.error) << ": " << p.message
                          << "\n";
                failures++;
                transport_failure |= p.error == ServeError::Transport;
                continue;
            }
            if (!first)
                std::cout << "\n";
            first = false;
            printResult(p.result, knobs.measure_cycles);
            if (!csv_path.empty())
                appendCsv(csv_path, p.result, knobs.measure_cycles);
        }
        if (failures == 0)
            return 0;
        return transport_failure ? 2 : 3;
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
}
