/**
 * @file
 * thermctl_coord — fault-tolerant sweep coordinator across serve nodes.
 *
 * Usage:
 *   thermctl_coord --connect ENDPOINT [--connect ENDPOINT ...] [options]
 *     --connect EP        worker endpoint ("unix:PATH", "tcp:HOST:PORT",
 *                         or a bare socket path); repeat per worker
 *     --bench NAMES       comma-separated benchmark profiles (default
 *                         186.crafty)
 *     --policy NAMES      comma-separated policy names (default none)
 *     --warmup N          warm-up cycles (default 300000)
 *     --cycles N          measured cycles (default 1000000)
 *     --setpoint T        CT setpoint in C (0 = server default)
 *     --sample N          controller sampling interval (0 = default)
 *     --cores N           number of cores (0 = server default)
 *     --coupling R        inter-core coupling resistance in K/W
 *     --budget W          chip power budget in W (0 = server default)
 *     --budget-policy P   uniform|demand|headroom
 *     --lease-ms N        per-point lease (request deadline + receive
 *                         timeout; default 20000)
 *     --connect-timeout-ms N  bound per connect attempt (default 1000)
 *     --probe-interval-ms N   health probe cadence (default 200)
 *     --quarantine-ms N   quarantine window for failed workers
 *     --unhealthy-after N consecutive failures before demotion
 *     --max-attempts N    dispatch attempts per point (default 8)
 *     --seed N            backoff jitter seed (replayable)
 *     --require-complete  any missing point is a hard failure (exit 2)
 *     --workers-report    print per-worker counters to stderr at the end
 *     --fault-plan SPEC   arm the deterministic fault injector
 *                         (coordinator-side chaos; THERMCTL_FAULTS build)
 *
 * Result blocks are printed to stdout in grid order (benchmarks outer,
 * policies inner), formatted exactly like thermctl_run, so a merged
 * cluster run can be compared byte-for-byte against a single-process
 * reference. Partial results are never silent: every missing point is
 * listed on stderr as a manifest line, and the exit status says so —
 * 0 all points completed, 3 best-effort run with missing points,
 * 2 hard failure (usage, correctness violation, or --require-complete
 * with missing points).
 */

#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "fault/fault.hh"
#include "serve/coordinator.hh"
#include "sim/policy_factory.hh"
#include "sim/sweep.hh"

using namespace thermctl;
using namespace thermctl::serve;

namespace
{

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= arg.size()) {
        const std::size_t comma = arg.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? arg.size() : comma;
        if (end > start)
            parts.push_back(arg.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (parts.empty())
        fatal("empty name list '", arg, "'");
    return parts;
}

void
usage()
{
    std::cout <<
        "usage: thermctl_coord --connect ENDPOINT [--connect ...]\n"
        "                      [--bench NAME[,NAME...]]\n"
        "                      [--policy NAME[,NAME...]]\n"
        "                      [--warmup N] [--cycles N] [--setpoint T]\n"
        "                      [--sample N] [--cores N] [--coupling R]\n"
        "                      [--budget W]\n"
        "                      [--budget-policy uniform|demand|headroom]\n"
        "                      [--lease-ms N] [--connect-timeout-ms N]\n"
        "                      [--probe-interval-ms N] [--quarantine-ms N]\n"
        "                      [--unhealthy-after N] [--max-attempts N]\n"
        "                      [--seed N] [--require-complete]\n"
        "                      [--workers-report] [--fault-plan SPEC]\n";
}

/** Identical layout to thermctl_run's printResult (bit-compare safe). */
void
printResult(const RunResult &r, std::uint64_t cycles)
{
    std::cout << "benchmark     : " << r.benchmark << "\n"
              << "policy        : " << r.policy << "\n"
              << "cycles        : " << cycles << "\n"
              << "performance   : " << r.ipc << " (IPC " << r.raw_ipc
              << ")\n"
              << "avg power     : " << r.avg_power << " W\n"
              << "max temp      : " << r.max_temperature << " C\n"
              << "emergency     : "
              << formatPercent(r.emergency_fraction, 3) << "\n"
              << "stress        : " << formatPercent(r.stress_fraction, 1)
              << "\n"
              << "mean duty     : " << r.mean_duty << "\n";
}

void
printWorkers(const CoordinatorReport &report)
{
    for (const auto &w : report.workers) {
        std::cerr << "worker " << w.endpoint << ": "
                  << workerHealthName(w.health) << ", dispatched "
                  << w.dispatched << ", completed " << w.completed
                  << ", stolen " << w.stolen << ", shadowed "
                  << w.shadowed << ", transport " << w.transport_failures
                  << ", lease-expired " << w.lease_expiries << ", stalls "
                  << w.stalls << ", overloads " << w.overloads
                  << ", quarantines " << w.quarantines << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    CoordinatorOptions opts;
    std::vector<std::string> benches;
    std::vector<std::string> policies;
    PointSpec knobs;
    bool require_complete = false;
    bool workers_report = false;
    std::string fault_plan_spec;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    fatal("missing value for ", arg);
                return argv[++i];
            };
            if (arg == "--connect") {
                opts.endpoints.push_back(next());
            } else if (arg == "--bench") {
                benches = splitList(next());
            } else if (arg == "--policy") {
                policies = splitList(next());
            } else if (arg == "--warmup") {
                knobs.warmup_cycles = std::stoull(next());
            } else if (arg == "--cycles") {
                knobs.measure_cycles = std::stoull(next());
            } else if (arg == "--setpoint") {
                knobs.ct_setpoint = std::stod(next());
            } else if (arg == "--sample") {
                knobs.sample_interval = std::stoull(next());
            } else if (arg == "--cores") {
                const unsigned long v = std::stoul(next());
                if (v > kMaxCores)
                    fatal("--cores must be <= ", kMaxCores);
                knobs.num_cores = static_cast<std::uint32_t>(v);
            } else if (arg == "--coupling") {
                knobs.coupling_r = std::stod(next());
            } else if (arg == "--budget") {
                knobs.chip_budget = std::stod(next());
            } else if (arg == "--budget-policy") {
                const std::string name = next();
                BudgetPolicy policy;
                if (!parseBudgetPolicy(name, policy)) {
                    fatal("unknown budget policy '", name,
                          "' (expected uniform|demand|headroom)");
                }
                knobs.budget_policy = static_cast<std::uint8_t>(policy);
            } else if (arg == "--lease-ms") {
                opts.lease_ms =
                    static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--connect-timeout-ms") {
                opts.connect_timeout_ms =
                    static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--probe-interval-ms") {
                opts.probe_interval_ms =
                    static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--quarantine-ms") {
                opts.quarantine_ms =
                    static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--unhealthy-after") {
                opts.unhealthy_after =
                    static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--max-attempts") {
                opts.max_point_attempts =
                    static_cast<unsigned>(std::stoul(next()));
            } else if (arg == "--seed") {
                opts.seed = std::stoull(next());
            } else if (arg == "--require-complete") {
                require_complete = true;
            } else if (arg == "--workers-report") {
                workers_report = true;
            } else if (arg == "--fault-plan") {
                fault_plan_spec = next();
            } else if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else {
                usage();
                fatal("unknown option ", arg);
            }
        }

        if (benches.empty())
            benches = {"186.crafty"};
        if (policies.empty())
            policies = {"none"};

        if (!fault_plan_spec.empty()) {
#if defined(THERMCTL_FAULTS_ENABLED) && THERMCTL_FAULTS_ENABLED
            fault::FaultInjector::instance().arm(
                fault::FaultPlan::parse(fault_plan_spec));
#else
            fatal("--fault-plan needs a build with THERMCTL_FAULTS=ON "
                  "(fault points are compiled out of this binary)");
#endif
        }

        SweepRequest grid;
        grid.benchmarks = benches;
        grid.policies = policies;
        grid.warmup_cycles = knobs.warmup_cycles;
        grid.measure_cycles = knobs.measure_cycles;
        grid.ct_setpoint = knobs.ct_setpoint;
        grid.sample_interval = knobs.sample_interval;
        grid.num_cores = knobs.num_cores;
        grid.coupling_r = knobs.coupling_r;
        grid.chip_budget = knobs.chip_budget;
        grid.budget_policy = knobs.budget_policy;

        Coordinator coordinator(opts);
        const CoordinatorReport report =
            coordinator.run(Coordinator::gridPoints(grid));

        bool first = true;
        for (const auto &o : report.outcomes) {
            if (o.reply.error != ServeError::None)
                continue;
            if (!first)
                std::cout << "\n";
            first = false;
            printResult(o.reply.result, knobs.measure_cycles);
        }
        // The missing-point manifest: one stderr line per incomplete
        // point with its typed cause. A partial run is never silent.
        for (const auto &o : report.outcomes) {
            if (o.reply.error == ServeError::None)
                continue;
            std::cerr << "missing: " << o.key << ": "
                      << serveErrorName(o.reply.error)
                      << (o.reply.message.empty()
                              ? ""
                              : ": " + o.reply.message)
                      << " (after " << o.attempts << " attempt(s))\n";
        }
        if (workers_report)
            printWorkers(report);

        if (report.complete())
            return 0;
        const auto missing = report.missingKeys();
        std::cerr << "thermctl_coord: " << missing.size() << " of "
                  << report.outcomes.size() << " point(s) missing\n";
        if (require_complete)
            fatal("--require-complete: incomplete sweep");
        return 3;
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
}
