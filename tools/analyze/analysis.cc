#include "analyze/analysis.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "analyze/dataflow.hh"

namespace thermctl::analysis
{

using lint::Finding;
using lint::Include;
using lint::Token;

namespace
{

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size()
           && s.compare(0, prefix.size(), prefix) == 0;
}

/** Collapse "./" and "a/../" segments; keep the path '/'-separated. */
std::string
normalizePath(std::string_view path)
{
    std::vector<std::string> parts;
    std::size_t pos = 0;
    while (pos <= path.size()) {
        std::size_t slash = path.find('/', pos);
        std::string seg(path.substr(pos, slash == std::string_view::npos
                                             ? path.size() - pos
                                             : slash - pos));
        pos = slash == std::string_view::npos ? path.size() + 1 : slash + 1;
        if (seg.empty() || seg == ".")
            continue;
        if (seg == "..") {
            if (!parts.empty() && parts.back() != "..")
                parts.pop_back();
            else
                parts.push_back("..");
            continue;
        }
        parts.push_back(std::move(seg));
    }
    std::string out;
    for (const std::string &p : parts) {
        if (!out.empty())
            out += '/';
        out += p;
    }
    return out;
}

std::string
dirName(std::string_view path)
{
    std::size_t slash = path.rfind('/');
    return slash == std::string_view::npos ? std::string()
                                           : std::string(path.substr(0, slash));
}

bool
isKeyword(std::string_view s)
{
    static const std::set<std::string, std::less<>> kw = {
        "if",     "for",    "while",        "switch",   "catch",
        "return", "sizeof", "alignof",      "decltype", "static_assert",
        "new",    "delete", "co_return",    "co_await", "throw",
    };
    return kw.count(s) != 0;
}

/** Index of the token matching the opener at `open` ("(" ↔ ")"). */
std::size_t
matchForward(const std::vector<Token> &toks, std::size_t open)
{
    const std::string &o = toks[open].text;
    const std::string c = o == "(" ? ")" : (o == "[" ? "]" : "}");
    int depth = 0;
    for (std::size_t k = open; k < toks.size(); ++k) {
        if (toks[k].kind != Token::Kind::Punct)
            continue;
        if (toks[k].text == o)
            ++depth;
        else if (toks[k].text == c && --depth == 0)
            return k;
    }
    return toks.size();
}

/**
 * Walk a member/scope chain backwards from the identifier at `i`
 * (`a.b->c::d` with d at `i` returns a's index), skipping balanced
 * call/index groups inside the chain (`f().g` reaches f).
 */
std::size_t
chainStart(const std::vector<Token> &toks, std::size_t i)
{
    std::size_t j = i;
    while (j >= 2 && toks[j - 1].kind == Token::Kind::Punct
           && (toks[j - 1].text == "::" || toks[j - 1].text == "."
               || toks[j - 1].text == "->")) {
        std::size_t k = j - 2;
        if (toks[k].kind == Token::Kind::Punct
            && (toks[k].text == ")" || toks[k].text == "]")) {
            const std::string closer = toks[k].text;
            const std::string opener = closer == ")" ? "(" : "[";
            int depth = 0;
            std::size_t m = k;
            for (;; --m) {
                if (toks[m].kind == Token::Kind::Punct) {
                    if (toks[m].text == closer)
                        ++depth;
                    else if (toks[m].text == opener && --depth == 0)
                        break;
                }
                if (m == 0)
                    break;
            }
            if (m == 0 || depth != 0
                || toks[m - 1].kind != Token::Kind::Identifier)
                break;
            k = m - 1;
        } else if (toks[k].kind != Token::Kind::Identifier) {
            break;
        }
        j = k;
    }
    return j;
}

/** True when the statement context before `start` drops a call's value. */
bool
statementInitial(const std::vector<Token> &toks, std::size_t start)
{
    if (start == 0)
        return true;
    const Token &p = toks[start - 1];
    if (p.kind == Token::Kind::Punct)
        return p.text == ";" || p.text == "{" || p.text == "}"
               || p.text == ":";
    if (p.kind == Token::Kind::Identifier)
        return p.text == "else" || p.text == "do";
    return false;
}

/** Best-effort return-type spelling before a definition at `start`. */
std::string
spellReturnType(const std::vector<Token> &toks, std::size_t start)
{
    // Walk back over type-ish tokens, stopping at statement boundaries.
    static const std::set<std::string, std::less<>> skip = {
        "static", "inline",   "constexpr", "virtual",
        "explicit", "friend", "extern",    "nodiscard",
    };
    std::vector<std::string> parts;
    std::size_t j = start;
    while (j > 0) {
        const Token &t = toks[j - 1];
        if (t.kind == Token::Kind::Punct) {
            if (t.text == "::" || t.text == "&" || t.text == "*"
                || t.text == "<" || t.text == ">" || t.text == ","
                || t.text == "[" || t.text == "]") {
                parts.push_back(t.text);
                --j;
                continue;
            }
            break;
        }
        if (t.kind != Token::Kind::Identifier)
            break;
        if (skip.count(t.text)) {
            --j;
            continue;
        }
        parts.push_back(t.text);
        --j;
        // Stop once a plain type name is consumed and the next-left
        // token is not a qualifier joiner.
        if (j > 0 && toks[j - 1].kind == Token::Kind::Punct
            && toks[j - 1].text != "::")
            break;
        if (j > 0 && toks[j - 1].kind == Token::Kind::Identifier)
            break;
    }
    std::string out;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
        if (!out.empty() && *it != "::" && *it != "<" && *it != ">"
            && *it != "&" && *it != "*" && out.back() != ':'
            && out.back() != '<')
            out += ' ';
        out += *it;
    }
    if (out.size() > 64)
        out.resize(64);
    return out;
}

struct HeldLock
{
    std::string name;
    int depth = 0; ///< brace depth at acquisition (pops when left)
};

/**
 * One pass over a file's tokens filling the model's symbol index, call
 * sites, and lock-acquisition edges.
 */
void
scanFileSymbols(const std::string &path, const std::vector<Token> &toks,
                std::vector<FunctionInfo> &functions,
                std::vector<CallSite> &calls,
                std::vector<LockEdge> &lock_edges,
                std::set<std::string> &nodiscard_names)
{
    int brace_depth = 0;
    bool nodiscard_pending = false;
    std::vector<HeldLock> held;
    std::vector<std::string> requires_pending;

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];

        if (t.kind == Token::Kind::Punct) {
            if (t.text == "{") {
                ++brace_depth;
                // Entering a function body: REQUIRES'd mutexes are held
                // for its whole extent.
                for (const std::string &mu : requires_pending)
                    held.push_back({mu, brace_depth});
                requires_pending.clear();
                nodiscard_pending = false;
            } else if (t.text == "}") {
                brace_depth = std::max(0, brace_depth - 1);
                while (!held.empty() && held.back().depth > brace_depth)
                    held.pop_back();
                nodiscard_pending = false;
            } else if (t.text == ";") {
                requires_pending.clear();
                nodiscard_pending = false;
            }
            continue;
        }

        if (t.kind != Token::Kind::Identifier)
            continue;

        if (t.text == "nodiscard") {
            nodiscard_pending = true;
            continue;
        }

        // THERMCTL_REQUIRES(mu, ...) in a signature: the listed mutexes
        // are held by every caller — seed the held set for the body.
        if (t.text == "THERMCTL_REQUIRES" && i + 1 < toks.size()
            && toks[i + 1].text == "(") {
            const std::size_t close = matchForward(toks, i + 1);
            std::string arg;
            for (std::size_t k = i + 2; k < close; ++k) {
                if (toks[k].kind == Token::Kind::Punct
                    && toks[k].text == ",") {
                    if (!arg.empty())
                        requires_pending.push_back(arg);
                    arg.clear();
                } else {
                    arg += toks[k].text;
                }
            }
            if (!arg.empty())
                requires_pending.push_back(arg);
            i = close;
            continue;
        }

        // MutexLock <var>(<mutex-expr>): a scoped acquisition.
        if (t.text == "MutexLock" && i + 2 < toks.size()
            && toks[i + 1].kind == Token::Kind::Identifier
            && toks[i + 2].kind == Token::Kind::Punct
            && toks[i + 2].text == "(") {
            const std::size_t close = matchForward(toks, i + 2);
            std::string mutex;
            for (std::size_t k = i + 3; k < close; ++k)
                mutex += toks[k].text;
            if (!mutex.empty()) {
                for (const HeldLock &h : held)
                    if (h.name != mutex)
                        lock_edges.push_back(
                            {h.name, mutex, path, t.line});
                held.push_back({mutex, brace_depth});
            }
            i = close;
            continue;
        }

        // Identifier followed by "(": a call site or a definition.
        if (i + 1 >= toks.size() || toks[i + 1].kind != Token::Kind::Punct
            || toks[i + 1].text != "(" || isKeyword(t.text))
            continue;

        if (nodiscard_pending) {
            // The first name(...) after [[nodiscard]] is the declared
            // function.
            nodiscard_names.insert(t.text);
            nodiscard_pending = false;
        }

        const std::size_t close = matchForward(toks, i + 1);

        // Definition? Skip trailing qualifiers/annotations, expect "{".
        std::size_t after = close + 1;
        while (after < toks.size()) {
            const Token &a = toks[after];
            if (a.kind == Token::Kind::Identifier
                && (a.text == "const" || a.text == "noexcept"
                    || a.text == "override" || a.text == "final"
                    || startsWith(a.text, "THERMCTL_"))) {
                ++after;
                if (after < toks.size() && toks[after].text == "(")
                    after = matchForward(toks, after) + 1;
                continue;
            }
            break;
        }
        // A definition or declaration name may be qualified
        // (ByteWriter::f64) but never reached through `.`/`->`; the
        // return type sits immediately before the pure `::` chain.
        const std::size_t cs = chainStart(toks, i);
        bool pure_qualified = true;
        for (std::size_t k = cs; k < i && pure_qualified; ++k)
            pure_qualified = toks[k].kind == Token::Kind::Identifier
                             || (toks[k].kind == Token::Kind::Punct
                                 && toks[k].text == "::");
        const bool typed_before =
            pure_qualified && cs > 0
            && toks[cs - 1].kind == Token::Kind::Identifier
            && !isKeyword(toks[cs - 1].text)
            && toks[cs - 1].text != "else" && toks[cs - 1].text != "do";
        const bool is_definition =
            after < toks.size() && toks[after].kind == Token::Kind::Punct
            && toks[after].text == "{" && typed_before;
        // Declarations matter too: `void run(std::uint64_t n);` in a
        // header is the only evidence that `run` has a void overload.
        // (This also nets `Foo x(arg);` local variables as "functions
        // returning Foo" — harmless for a name-level index, since a
        // class type never spells "void".)
        const bool is_declaration =
            !is_definition && after < toks.size()
            && toks[after].kind == Token::Kind::Punct
            && toks[after].text == ";" && typed_before;
        if (is_definition || is_declaration) {
            FunctionInfo fn;
            fn.name = t.text;
            fn.return_type = spellReturnType(toks, cs);
            fn.file = path;
            fn.line = t.line;
            fn.nodiscard = nodiscard_names.count(t.text) != 0;
            functions.push_back(std::move(fn));
            continue;
        }

        // Call site: discarded when it is a whole expression statement.
        CallSite call;
        call.name = t.text;
        call.file = path;
        call.line = t.line;
        const std::size_t start = chainStart(toks, i);
        call.discarded = statementInitial(toks, start)
                         && close + 1 < toks.size()
                         && toks[close + 1].kind == Token::Kind::Punct
                         && toks[close + 1].text == ";";
        calls.push_back(std::move(call));
    }
}

/** Tarjan strongly-connected components over an adjacency list. */
std::vector<std::vector<std::size_t>>
stronglyConnected(const std::vector<std::vector<std::size_t>> &adj)
{
    const std::size_t n = adj.size();
    std::vector<int> index(n, -1), low(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<std::size_t> stack;
    std::vector<std::vector<std::size_t>> sccs;
    int next = 0;

    struct Frame
    {
        std::size_t v;
        std::size_t edge = 0;
    };

    for (std::size_t root = 0; root < n; ++root) {
        if (index[root] != -1)
            continue;
        std::vector<Frame> work{{root}};
        while (!work.empty()) {
            Frame &f = work.back();
            if (f.edge == 0) {
                index[f.v] = low[f.v] = next++;
                stack.push_back(f.v);
                on_stack[f.v] = true;
            }
            bool descended = false;
            while (f.edge < adj[f.v].size()) {
                const std::size_t w = adj[f.v][f.edge++];
                if (index[w] == -1) {
                    work.push_back({w});
                    descended = true;
                    break;
                }
                if (on_stack[w])
                    low[f.v] = std::min(low[f.v], index[w]);
            }
            if (descended)
                continue;
            if (low[f.v] == index[f.v]) {
                std::vector<std::size_t> scc;
                for (;;) {
                    const std::size_t w = stack.back();
                    stack.pop_back();
                    on_stack[w] = false;
                    scc.push_back(w);
                    if (w == f.v)
                        break;
                }
                sccs.push_back(std::move(scc));
            }
            const std::size_t v = f.v;
            work.pop_back();
            if (!work.empty())
                low[work.back().v] =
                    std::min(low[work.back().v], low[v]);
        }
    }
    return sccs;
}

/**
 * A representative cycle through `start` inside one SCC, as node
 * indices `start -> ... -> start` (first element repeated last).
 */
std::vector<std::size_t>
cycleThrough(const std::vector<std::vector<std::size_t>> &adj,
             const std::set<std::size_t> &scc, std::size_t start)
{
    std::vector<std::size_t> path{start};
    std::set<std::size_t> visited{start};
    // DFS restricted to the SCC; strong connectivity guarantees a path
    // back to `start`.
    std::vector<std::pair<std::size_t, std::size_t>> work{{start, 0}};
    while (!work.empty()) {
        auto &[v, e] = work.back();
        bool descended = false;
        while (e < adj[v].size()) {
            const std::size_t w = adj[v][e++];
            if (!scc.count(w))
                continue;
            if (w == start) {
                path.push_back(start);
                return path;
            }
            if (visited.count(w))
                continue;
            visited.insert(w);
            path.push_back(w);
            work.push_back({w, 0});
            descended = true;
            break;
        }
        if (!descended) {
            work.pop_back();
            path.pop_back();
        }
    }
    return {start, start}; // self-loop
}

} // namespace

// --------------------------------------------------------- ProjectModel

ProjectModel
ProjectModel::build(
    const std::vector<std::pair<std::string, std::string>> &files,
    const BuildOptions &opts)
{
    ProjectModel model;
    std::map<std::string, std::size_t> by_path;
    model.files_.reserve(files.size());
    for (const auto &[path, content] : files) {
        SourceFile f;
        f.path = normalizePath(path);
        f.includes = lint::scanIncludes(content);
        f.tokens = lint::tokenize(content);
        by_path.emplace(f.path, model.files_.size());
        model.files_.push_back(std::move(f));
    }

    for (SourceFile &f : model.files_) {
        for (std::size_t k = 0; k < f.includes.size(); ++k) {
            const Include &inc = f.includes[k];
            if (inc.system)
                continue;
            std::vector<std::string> candidates;
            const std::string dir = dirName(f.path);
            candidates.push_back(
                normalizePath(dir.empty() ? inc.path : dir + "/" + inc.path));
            for (const std::string &root : opts.roots)
                candidates.push_back(normalizePath(
                    root.empty() ? inc.path : root + "/" + inc.path));
            for (const std::string &cand : candidates) {
                auto it = by_path.find(cand);
                if (it != by_path.end()) {
                    f.edges.push_back(it->second);
                    f.edge_include.push_back(k);
                    break;
                }
            }
        }
    }

    for (const SourceFile &f : model.files_)
        scanFileSymbols(f.path, f.tokens, model.functions_, model.calls_,
                        model.lock_edges_, model.nodiscard_names_);
    return model;
}

std::size_t
ProjectModel::indexOf(std::string_view path) const
{
    const std::string norm = normalizePath(path);
    for (std::size_t i = 0; i < files_.size(); ++i)
        if (files_[i].path == norm)
            return i;
    return npos;
}

// ------------------------------------------------------------ LayerSpec

bool
LayerSpec::parse(std::string_view text, std::string &error)
{
    layers_.clear();
    int line = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        ++line;
        std::size_t eol = text.find('\n', pos);
        std::string ln(text.substr(pos, eol == std::string_view::npos
                                            ? text.size() - pos
                                            : eol - pos));
        pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;

        std::istringstream fields(ln);
        std::string head;
        fields >> head;
        if (head.empty() || head[0] == '#')
            continue;
        if (head != "layer") {
            error = "layers line " + std::to_string(line)
                    + ": expected 'layer <name> <prefix>...', got '" + head
                    + "'";
            return false;
        }
        Layer layer;
        fields >> layer.name;
        if (layer.name.empty()) {
            error = "layers line " + std::to_string(line)
                    + ": layer is missing a name";
            return false;
        }
        for (const Layer &prev : layers_) {
            if (prev.name == layer.name) {
                error = "layers line " + std::to_string(line)
                        + ": duplicate layer '" + layer.name + "'";
                return false;
            }
        }
        std::string prefix;
        while (fields >> prefix)
            layer.prefixes.push_back(normalizePath(prefix));
        if (layer.prefixes.empty()) {
            error = "layers line " + std::to_string(line) + ": layer '"
                    + layer.name + "' has no path prefixes";
            return false;
        }
        layers_.push_back(std::move(layer));
    }
    return true;
}

int
LayerSpec::layerOf(std::string_view path) const
{
    int best = -1;
    std::size_t best_len = 0;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        for (const std::string &prefix : layers_[i].prefixes) {
            if (prefix.size() < best_len || !startsWith(path, prefix))
                continue;
            // Prefix must end at a path-component boundary.
            if (path.size() > prefix.size()
                && path[prefix.size()] != '/')
                continue;
            best = static_cast<int>(i);
            best_len = prefix.size();
        }
    }
    return best;
}

// --------------------------------------------------------- MustCheckSet

bool
MustCheckSet::matches(std::string_view name) const
{
    for (const std::string &e : exact)
        if (name == e)
            return true;
    for (const std::string &p : prefixes)
        if (startsWith(name, p))
            return true;
    return false;
}

void
MustCheckSet::add(std::string_view entry)
{
    if (!entry.empty() && entry.back() == '*')
        prefixes.emplace_back(entry.substr(0, entry.size() - 1));
    else
        exact.emplace_back(entry);
}

MustCheckSet
MustCheckSet::defaults()
{
    MustCheckSet set;
    // Frame / socket I/O: the PR-5 handleFrame hang was an ignored
    // writeFrame result.
    set.exact = {"writeFrame",     "readFully",       "readFrame",
                 "loadCacheEntry", "validCacheBytes", "sweepCacheLookup"};
    // Every encoder/decoder pair: a dropped decode status means
    // trusting uninitialized output.
    set.prefixes = {"encode", "decode", "serialize", "deserialize"};
    return set;
}

// ---------------------------------------------------------------- passes

const std::vector<std::string> &
analysisRuleIds()
{
    static const std::vector<std::string> ids = {
        "layering",
        "include-cycle",
        "unchecked-return",
        "lock-order",
        "alloc-bound",
        "field-coverage",
    };
    return ids;
}

std::vector<Finding>
checkLayering(const ProjectModel &model, const LayerSpec &spec)
{
    std::vector<Finding> findings;
    if (spec.empty())
        return findings;
    for (const SourceFile &f : model.files()) {
        const int from = spec.layerOf(f.path);
        if (from < 0) {
            findings.push_back(
                {f.path, 1, "layering",
                 "file matches no layer in the layers spec; add its "
                 "directory to .thermctl-layers"});
            continue;
        }
        for (std::size_t e = 0; e < f.edges.size(); ++e) {
            const SourceFile &g = model.files()[f.edges[e]];
            const int to = spec.layerOf(g.path);
            if (to < 0 || to <= from)
                continue;
            const Include &inc = f.includes[f.edge_include[e]];
            findings.push_back(
                {f.path, inc.line, "layering",
                 "layer '" + spec.layers()[from].name + "' file includes '"
                     + g.path + "' from higher layer '"
                     + spec.layers()[to].name
                     + "'; dependencies must point down the layering"});
        }
    }
    return findings;
}

std::vector<Finding>
checkIncludeCycles(const ProjectModel &model)
{
    std::vector<Finding> findings;
    std::vector<std::vector<std::size_t>> adj(model.files().size());
    for (std::size_t i = 0; i < model.files().size(); ++i)
        adj[i] = model.files()[i].edges;

    for (const std::vector<std::size_t> &scc : stronglyConnected(adj)) {
        bool cyclic = scc.size() > 1;
        if (scc.size() == 1) {
            for (std::size_t w : adj[scc[0]])
                if (w == scc[0])
                    cyclic = true;
        }
        if (!cyclic)
            continue;
        // Anchor at the lexicographically-first member for determinism.
        std::set<std::size_t> members(scc.begin(), scc.end());
        std::size_t anchor = scc[0];
        for (std::size_t v : scc)
            if (model.files()[v].path < model.files()[anchor].path)
                anchor = v;
        const std::vector<std::size_t> cycle =
            cycleThrough(adj, members, anchor);
        std::string chain;
        for (std::size_t v : cycle) {
            if (!chain.empty())
                chain += " -> ";
            chain += model.files()[v].path;
        }
        // Line: the anchor's include that stays inside the cycle.
        const SourceFile &a = model.files()[anchor];
        int line = 1;
        for (std::size_t e = 0; e < a.edges.size(); ++e) {
            if (members.count(a.edges[e])) {
                line = a.includes[a.edge_include[e]].line;
                break;
            }
        }
        findings.push_back({a.path, line, "include-cycle",
                            "include cycle: " + chain});
    }
    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding &x, const Finding &y) {
                         return x.file < y.file;
                     });
    return findings;
}

std::vector<Finding>
checkUncheckedReturns(const ProjectModel &model, const MustCheckSet &must)
{
    // The symbol index tempers the name-based matching with return
    // types. A must-check name whose every known definition returns
    // void (e.g. the encodePoint(ByteWriter&, ...) helpers matched by
    // the encode* prefix) has no result to check and is exempt. A
    // [[nodiscard]] name is auto-flagged only while no definition of
    // that name returns void: once an unrelated void overload shares
    // the name (ByteWriter::str vs the [[nodiscard]] ByteReader::str),
    // a token-level tool cannot tell the call sites apart, so the
    // per-overload enforcement is left to the compiler's
    // -Wunused-result and the name drops out of this pass.
    std::set<std::string, std::less<>> void_ret, non_void;
    for (const FunctionInfo &fn : model.functions()) {
        if (fn.return_type == "void")
            void_ret.insert(fn.name);
        else
            non_void.insert(fn.name);
    }

    std::vector<Finding> findings;
    for (const CallSite &call : model.calls()) {
        if (!call.discarded)
            continue;
        const bool has_void_def = void_ret.count(call.name) != 0;
        const bool all_void =
            has_void_def && non_void.count(call.name) == 0;
        const bool nodiscard = !has_void_def
                               && model.nodiscardNames().count(call.name)
                                      != 0;
        if (!nodiscard && (!must.matches(call.name) || all_void))
            continue;
        findings.push_back(
            {call.file, call.line, "unchecked-return",
             "result of '" + call.name + "' is discarded"
                 + (nodiscard ? " (declared [[nodiscard]])" : "")
                 + "; handle the failure or cast to (void) with a "
                   "justifying comment"});
    }
    return findings;
}

std::vector<Finding>
checkLockOrder(const ProjectModel &model)
{
    std::vector<Finding> findings;

    // Deterministic node numbering: sorted mutex names.
    std::set<std::string> names;
    for (const LockEdge &e : model.lockEdges()) {
        names.insert(e.held);
        names.insert(e.acquired);
    }
    std::vector<std::string> nodes(names.begin(), names.end());
    auto indexOf = [&](const std::string &n) {
        return static_cast<std::size_t>(
            std::lower_bound(nodes.begin(), nodes.end(), n)
            - nodes.begin());
    };

    std::vector<std::vector<std::size_t>> adj(nodes.size());
    // edge -> a representative acquisition site, for the diagnostic
    std::map<std::pair<std::size_t, std::size_t>, const LockEdge *> sites;
    for (const LockEdge &e : model.lockEdges()) {
        const std::size_t u = indexOf(e.held), v = indexOf(e.acquired);
        if (!sites.count({u, v})) {
            adj[u].push_back(v);
            sites[{u, v}] = &e;
        }
    }
    for (auto &out : adj)
        std::sort(out.begin(), out.end());

    for (const std::vector<std::size_t> &scc : stronglyConnected(adj)) {
        bool cyclic = scc.size() > 1;
        if (scc.size() == 1) {
            for (std::size_t w : adj[scc[0]])
                if (w == scc[0])
                    cyclic = true;
        }
        if (!cyclic)
            continue;
        std::set<std::size_t> members(scc.begin(), scc.end());
        std::size_t anchor = *std::min_element(
            scc.begin(), scc.end(), [&](std::size_t x, std::size_t y) {
                return nodes[x] < nodes[y];
            });
        const std::vector<std::size_t> cycle =
            cycleThrough(adj, members, anchor);
        std::string chain;
        for (std::size_t v : cycle) {
            if (!chain.empty())
                chain += " -> ";
            chain += nodes[v];
        }
        // Anchor the finding at the first edge of the cycle.
        const LockEdge *site = nullptr;
        if (cycle.size() >= 2)
            site = sites[{cycle[0], cycle[1]}];
        findings.push_back(
            {site ? site->file : "<lock-graph>", site ? site->line : 1,
             "lock-order",
             "potential deadlock: lock-order cycle " + chain
                 + " (acquisition order must be globally consistent)"});
    }
    return findings;
}

std::vector<Finding>
analyzeProject(const ProjectModel &model, const LayerSpec &spec,
               const MustCheckSet &must)
{
    return analyzeProject(model, spec, must, AnalyzeOptions{});
}

bool
AnalyzeOptions::wants(std::string_view id) const
{
    if (passes.empty())
        return true;
    for (const std::string &p : passes)
        if (p == id)
            return true;
    return false;
}

std::vector<Finding>
analyzeProject(const ProjectModel &model, const LayerSpec &spec,
               const MustCheckSet &must, const AnalyzeOptions &opts)
{
    std::vector<Finding> findings;
    auto take = [&](std::vector<Finding> &&more) {
        for (Finding &f : more)
            findings.push_back(std::move(f));
    };
    if (opts.wants("layering"))
        take(checkLayering(model, spec));
    if (opts.wants("include-cycle"))
        take(checkIncludeCycles(model));
    if (opts.wants("unchecked-return"))
        take(checkUncheckedReturns(model, must));
    if (opts.wants("lock-order"))
        take(checkLockOrder(model));
    if (opts.wants("alloc-bound"))
        take(checkAllocBound(model));
    if (opts.wants("field-coverage"))
        take(checkFieldCoverage(model, opts.allowed_fields));
    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.file != b.file)
                             return a.file < b.file;
                         return a.line < b.line;
                     });
    return findings;
}

} // namespace thermctl::analysis
