/**
 * @file
 * thermctl-dataflow: per-function CFG + taint dataflow and struct-field
 * coverage auditing on top of the project model (analysis.hh).
 *
 * Two passes live here, both motivated by bug classes this repo has
 * actually shipped and fixed by hand:
 *
 *   alloc-bound      hostile count prefixes reaching an allocation.
 *                    Taint sources are values read from a ByteReader
 *                    (u8/u16/u32/u64/i64/f64/str/varint) and the
 *                    out-params of decode* and deserialize* calls;
 *                    sinks
 *                    are reserve(...), resize(...), `new T[n]`, and
 *                    count-taking container constructors. A tainted
 *                    value reaching a sink without a *dominating*
 *                    guard — a comparison against remaining(), a
 *                    k*Max* / k*Min* constant, a sizeof byte-length
 *                    cross-check, or (for decode out-params) a test of
 *                    the decode call's status — is a finding. This is
 *                    exactly the PR-4 allocation-bomb class
 *                    (decodeStrings, SweepReply::decode, decodeTrace).
 *
 *   field-coverage   struct fields silently missing from a
 *                    HashStream feed() or an encode/decode pair.
 *                    For every struct that has a digest function
 *                    (feed(HashStream&, const X&) or a digest helper
 *                    that names HashStream in its body) or
 *                    encode/decode/serialize/deserialize coverage,
 *                    every declared field name must appear in the
 *                    union of that role's bodies. Adding a field
 *                    without feeding it fails --ci instead of
 *                    corrupting sweep-cache keys — this supersedes the
 *                    sizeof static_assert advice in src/sim/sweep.cc.
 *
 * The CFG is intraprocedural and token-level: basic blocks over
 * if/else/for/while/do/switch/return/break/continue, dominators by the
 * standard iterative set intersection, and a conservative straight-line
 * fallback (one block per top-level statement chain) whenever a body
 * fails to parse. Straight-line fallback keeps statement *order*, so
 * guard detection still works there — only branch join precision is
 * lost.
 *
 * DESIGN.md §16 documents the model, the guard heuristics, and the
 * field-coverage contract.
 */

#ifndef THERMCTL_TOOLS_ANALYZE_DATAFLOW_HH
#define THERMCTL_TOOLS_ANALYZE_DATAFLOW_HH

#include <cstddef>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/analysis.hh"
#include "lint/lint.hh"

namespace thermctl::analysis
{

// ------------------------------------------------------------------ CFG

/** One statement: a half-open token range [begin, end) of the body. */
struct CfgStmt
{
    std::size_t begin = 0;
    std::size_t end = 0;
    bool is_cond = false; ///< condition of an if/while/for/do/switch
    int line = 1;         ///< line of the first token
};

/** One basic block: statements executed in order, then a branch. */
struct CfgBlock
{
    std::vector<CfgStmt> stmts;
    std::vector<std::size_t> succs; ///< successor block indices
};

/** A function body's control-flow graph. Block 0 is the entry. */
struct Cfg
{
    std::vector<CfgBlock> blocks;

    /** True when the body failed to parse and order-only fallback ran. */
    bool straight_line = false;
};

/**
 * Build the CFG for body tokens [begin, end) — the range *inside* the
 * braces of a function body. Falls back to a single straight-line
 * block (straight_line = true) on any structural inconsistency.
 */
Cfg buildCfg(const std::vector<lint::Token> &toks, std::size_t begin,
             std::size_t end);

/**
 * Dominator sets by iterative intersection: dom[b][d] is true when
 * every path from the entry to block b passes through block d (b
 * dominates itself). Unreachable blocks report every block as a
 * dominator, which errs toward "guarded" — dead code never allocates.
 */
std::vector<std::vector<bool>> dominators(const Cfg &cfg);

// -------------------------------------------------- function indexing

/** A function definition with parameter and body token ranges. */
struct FuncDef
{
    std::string name;      ///< unqualified identifier
    std::string qualifier; ///< nearest "X::" qualifier ("" when free)
    std::size_t params_begin = 0; ///< index of the opening '('
    std::size_t params_end = 0;   ///< index of the matching ')'
    std::size_t body_begin = 0;   ///< index of the opening '{'
    std::size_t body_end = 0;     ///< index of the matching '}'
    int line = 1;
};

/** Index every function definition (with a brace body) in `toks`. */
std::vector<FuncDef> indexFunctions(const std::vector<lint::Token> &toks);

// ---------------------------------------------------- struct indexing

/** One declared data member. */
struct FieldDef
{
    std::string name;
    int line = 1;
};

/** A struct/class definition and its data members. */
struct StructDef
{
    std::string name;
    std::string file;
    int line = 1;
    std::vector<FieldDef> fields;
};

/**
 * Index struct/class definitions and their field names in `toks`.
 * Member functions, nested type definitions, using/typedef/static
 * members and friend declarations are skipped; initializers are not
 * mistaken for declarators. Nested structs are indexed as their own
 * entries.
 */
std::vector<StructDef> indexStructs(const std::vector<lint::Token> &toks,
                                    const std::string &file);

// ------------------------------------------------------------- passes

/**
 * alloc-bound pass over every function of every modeled file: tainted
 * allocation sizes must pass a dominating bound check. See the file
 * header for the taint/guard model.
 */
std::vector<lint::Finding> checkAllocBound(const ProjectModel &model);

/**
 * field-coverage pass: every field of a digested / serialized struct
 * must appear in the corresponding coverage bodies. `allowed_fields`
 * holds "Struct::field" exclusions (--allow-field on the CLI).
 */
std::vector<lint::Finding>
checkFieldCoverage(const ProjectModel &model,
                   const std::set<std::string> &allowed_fields);

} // namespace thermctl::analysis

#endif // THERMCTL_TOOLS_ANALYZE_DATAFLOW_HH
