/**
 * @file
 * thermctl-deepcheck: whole-project static analysis over the thermctl
 * source tree.
 *
 * Where tools/lint (thermctl_lint) checks each file in isolation, this
 * library builds a *project model* across every file of one invocation
 * and runs cross-file passes over it:
 *
 *   layering / include-cycle   the committed `.thermctl-layers` file
 *                              declares the dependency DAG between
 *                              source directories (common at the
 *                              bottom, tools/tests/bench at the top);
 *                              the pass rejects includes that reach
 *                              *up* the layering and any include cycle
 *                              anywhere in the graph
 *   unchecked-return           call sites that discard the result of a
 *                              must-check function as a bare expression
 *                              statement (`writeFrame(...)`; on a line
 *                              of its own). The must-check set is the
 *                              built-in seed list (frame/socket I/O,
 *                              encoders + decoders, cache publish/load)
 *                              plus every function the project itself
 *                              declares [[nodiscard]] — so tightening
 *                              an API tightens the analysis with it.
 *                              An explicit `(void)` cast acknowledges
 *                              and silences a site.
 *   lock-order                 a static lock-acquisition graph derived
 *                              from MutexLock nesting (scope-tracked
 *                              per function) plus the PR-4
 *                              THERMCTL_REQUIRES annotations (a
 *                              function that REQUIRES mutex A and
 *                              acquires B adds the edge A→B even
 *                              though the acquisition of A is in its
 *                              callers). Cycles in the graph are
 *                              reported as potential deadlocks.
 *
 * The model is deliberately token-level (built on the thermctl_lint
 * tokenizer, not libclang): include resolution, a lightweight symbol
 * index (function definitions, [[nodiscard]] declarations, call
 * sites), and lock-acquisition edges are all derivable from the token
 * stream, which keeps the tool dependency-free and fast enough to run
 * over the whole tree on every scripts/check.sh invocation (stage
 * "analyze").
 *
 * Findings reuse lint::Finding and the `.thermctl-lint-allow` baseline
 * mechanism (`rule path-suffix justification` entries, stale entries
 * flagged); the committed analyzer baseline lives in
 * `.thermctl-analyze-allow`. DESIGN.md §13 documents the model, the
 * passes, and the `.thermctl-layers` format.
 */

#ifndef THERMCTL_TOOLS_ANALYZE_ANALYSIS_HH
#define THERMCTL_TOOLS_ANALYZE_ANALYSIS_HH

#include <cstddef>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/lint.hh"

namespace thermctl::analysis
{

/** One file of the project model. */
struct SourceFile
{
    std::string path; ///< repo-relative, '/'-separated
    std::vector<lint::Include> includes;

    /**
     * The file's token stream (comments stripped, strings collapsed).
     * Tokenized once at build time and shared by every pass; the
     * dataflow passes (dataflow.hh) index function bodies and struct
     * fields directly out of this stream.
     */
    std::vector<lint::Token> tokens;

    /**
     * Resolved project-internal include edges: for includes[k] that
     * named another modeled file, `edges` holds that file's model
     * index and `edge_include` the position k it came from. External
     * (system / unmodeled) includes produce no edge.
     */
    std::vector<std::size_t> edges;
    std::vector<std::size_t> edge_include;
};

/** A function definition or [[nodiscard]] declaration found in a file. */
struct FunctionInfo
{
    std::string name;        ///< unqualified identifier
    std::string return_type; ///< best-effort spelling ("" when unknown)
    std::string file;
    int line = 1;
    bool nodiscard = false; ///< declared [[nodiscard]]
};

/** One call site of the form `name(...)` (after `.`/`->`/`::` chains). */
struct CallSite
{
    std::string name;
    std::string file;
    int line = 1;

    /**
     * True when the call is a bare expression statement whose value is
     * dropped (not assigned, returned, tested, passed on, or cast to
     * void).
     */
    bool discarded = false;
};

/** Edge of the static lock-acquisition graph: `held` → `acquired`. */
struct LockEdge
{
    std::string held;     ///< mutex already held (scope or REQUIRES)
    std::string acquired; ///< mutex being acquired under it
    std::string file;
    int line = 1;         ///< line of the inner acquisition
};

/** Options for ProjectModel::build. */
struct BuildOptions
{
    /**
     * Include-resolution roots, tried in order after the including
     * file's own directory. The repo convention is `#include
     * "common/logging.hh"` relative to src/ (and "lint/lint.hh"
     * relative to tools/), so the defaults cover the real tree; fixture
     * trees pass their own roots (often just "").
     */
    std::vector<std::string> roots = {"src", "tools"};
};

/**
 * The whole-project model: every file's include edges plus the
 * project-wide symbol index. Built once per invocation; the passes
 * below are cheap queries over it.
 */
class ProjectModel
{
  public:
    /** Build the model from (path, content) pairs. Order is preserved. */
    static ProjectModel
    build(const std::vector<std::pair<std::string, std::string>> &files,
          const BuildOptions &opts = {});

    const std::vector<SourceFile> &files() const { return files_; }
    const std::vector<FunctionInfo> &functions() const { return functions_; }
    const std::vector<CallSite> &calls() const { return calls_; }
    const std::vector<LockEdge> &lockEdges() const { return lock_edges_; }

    /** Names declared [[nodiscard]] anywhere in the model. */
    const std::set<std::string> &nodiscardNames() const
    {
        return nodiscard_names_;
    }

    /** @return model index of `path`, or npos. */
    std::size_t indexOf(std::string_view path) const;

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  private:
    std::vector<SourceFile> files_;
    std::vector<FunctionInfo> functions_;
    std::vector<CallSite> calls_;
    std::vector<LockEdge> lock_edges_;
    std::set<std::string> nodiscard_names_;
};

/**
 * Parsed `.thermctl-layers` file: an ordered list of layers, lowest
 * first, each owning a set of path prefixes. A file belongs to the
 * layer with the longest matching prefix; a file may include files of
 * its own or any *lower* layer, never a higher one.
 *
 * Format, one layer per line (blank lines / `#` comments ignored):
 *
 *     layer <name> <path-prefix> [<path-prefix>...]
 */
class LayerSpec
{
  public:
    struct Layer
    {
        std::string name;
        std::vector<std::string> prefixes;
    };

    /** @return false and set `error` on a malformed or duplicate line. */
    bool parse(std::string_view text, std::string &error);

    /** @return layer index of `path` (longest prefix wins), or -1. */
    int layerOf(std::string_view path) const;

    const std::vector<Layer> &layers() const { return layers_; }
    bool empty() const { return layers_.empty(); }

  private:
    std::vector<Layer> layers_;
};

/**
 * The unchecked-return pass's must-check set: exact names plus
 * prefixes (an entry ending in '*' in the CLI). matches() also accepts
 * any project-declared [[nodiscard]] name when a model is supplied to
 * checkUncheckedReturns.
 */
struct MustCheckSet
{
    std::vector<std::string> exact;
    std::vector<std::string> prefixes;

    bool matches(std::string_view name) const;

    /** Add `entry`, treating a trailing '*' as a prefix wildcard. */
    void add(std::string_view entry);

    /**
     * The seed set: frame/socket I/O (writeFrame, readFully,
     * readFrame), every name starting with encode / decode /
     * serialize / deserialize,
     * and cache publish/load (loadCacheEntry, validCacheBytes,
     * sweepCacheLookup).
     */
    static MustCheckSet defaults();
};

/** Stable rule ids of the analysis passes (allowlist validation). */
const std::vector<std::string> &analysisRuleIds();

/**
 * Layering pass: every resolved include edge must point sideways or
 * down the LayerSpec; files matching no layer are reported once.
 * Returns nothing when `spec` is empty.
 */
std::vector<lint::Finding> checkLayering(const ProjectModel &model,
                                         const LayerSpec &spec);

/** Include-cycle pass: report every cycle in the include graph once. */
std::vector<lint::Finding> checkIncludeCycles(const ProjectModel &model);

/**
 * Unchecked-return pass: flag discarded calls to must-check functions
 * (the set plus every [[nodiscard]] name the model itself declares).
 */
std::vector<lint::Finding>
checkUncheckedReturns(const ProjectModel &model, const MustCheckSet &must);

/** Lock-order pass: report cycles in the lock-acquisition graph. */
std::vector<lint::Finding> checkLockOrder(const ProjectModel &model);

/**
 * Pass selection and per-pass options for analyzeProject. The two
 * dataflow passes (alloc-bound, field-coverage) live in dataflow.hh;
 * they are declared there and dispatched here so the CLI sees one
 * entry point.
 */
struct AnalyzeOptions
{
    /**
     * Rule ids to run (`--pass` on the CLI); empty means every pass.
     * Unknown names are the caller's responsibility to reject (the CLI
     * validates against analysisRuleIds()).
     */
    std::vector<std::string> passes;

    /**
     * Field-coverage exclusions, as "Struct::field" strings
     * (`--allow-field` on the CLI): deliberately-uncovered fields that
     * must not be reported.
     */
    std::set<std::string> allowed_fields;

    /** @return true when pass `id` should run. */
    bool wants(std::string_view id) const;
};

/** All passes in order; layering skipped when `spec` is empty. */
std::vector<lint::Finding> analyzeProject(const ProjectModel &model,
                                          const LayerSpec &spec,
                                          const MustCheckSet &must);

/** As above, honouring `opts` (pass filter + field exclusions). */
std::vector<lint::Finding> analyzeProject(const ProjectModel &model,
                                          const LayerSpec &spec,
                                          const MustCheckSet &must,
                                          const AnalyzeOptions &opts);

} // namespace thermctl::analysis

#endif // THERMCTL_TOOLS_ANALYZE_ANALYSIS_HH
