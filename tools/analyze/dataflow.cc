#include "analyze/dataflow.hh"

#include <algorithm>
#include <map>
#include <set>

namespace thermctl::analysis
{

using lint::Finding;
using lint::Token;

namespace
{

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size()
           && s.compare(0, prefix.size(), prefix) == 0;
}

bool
isPunct(const Token &t, std::string_view text)
{
    return t.kind == Token::Kind::Punct && t.text == text;
}

bool
isIdent(const Token &t, std::string_view text)
{
    return t.kind == Token::Kind::Identifier && t.text == text;
}

/** Index of the token matching the opener at `open` ("(" ↔ ")"). */
std::size_t
matchForward(const std::vector<Token> &toks, std::size_t open)
{
    const std::string &o = toks[open].text;
    const std::string c = o == "(" ? ")" : (o == "[" ? "]" : "}");
    int depth = 0;
    for (std::size_t k = open; k < toks.size(); ++k) {
        if (toks[k].kind != Token::Kind::Punct)
            continue;
        if (toks[k].text == o)
            ++depth;
        else if (toks[k].text == c && --depth == 0)
            return k;
    }
    return toks.size();
}

/**
 * Skip a template-argument group: `i` points at '<' directly after an
 * identifier. Returns the index past the matching '>', or `i` itself
 * when no balanced group closes before `stop` (i.e. the '<' was a
 * comparison, not template syntax).
 */
std::size_t
skipAngles(const std::vector<Token> &toks, std::size_t i, std::size_t stop)
{
    int depth = 0;
    for (std::size_t k = i; k < stop; ++k) {
        if (toks[k].kind != Token::Kind::Punct)
            continue;
        if (toks[k].text == "<")
            ++depth;
        else if (toks[k].text == ">" && --depth == 0)
            return k + 1;
        else if (toks[k].text == ";")
            break;
    }
    return i;
}

/** Names that can precede '(' without being a call/definition. */
bool
isControlKeyword(std::string_view s)
{
    static const std::set<std::string, std::less<>> kw = {
        "if",       "for",      "while",    "switch",        "catch",
        "return",   "sizeof",   "alignof",  "decltype",      "static_assert",
        "new",      "delete",   "throw",    "do",            "else",
        "case",     "default",  "break",    "continue",      "alignas",
        "noexcept", "co_return", "co_await",
    };
    return kw.count(s) != 0;
}

// ------------------------------------------------------------------ CFG

/**
 * Recursive-descent CFG construction. Any structural surprise sets
 * `failed`, and buildCfg falls back to one straight-line block — order
 * is preserved there, so guard detection degrades gracefully instead
 * of crashing or looping.
 */
struct CfgBuilder
{
    const std::vector<Token> &toks;
    Cfg cfg;
    bool failed = false;

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    explicit CfgBuilder(const std::vector<Token> &t) : toks(t) {}

    std::size_t newBlock()
    {
        cfg.blocks.emplace_back();
        return cfg.blocks.size() - 1;
    }

    void edge(std::size_t from, std::size_t to)
    {
        cfg.blocks[from].succs.push_back(to);
    }

    void addStmt(std::size_t block, std::size_t b, std::size_t e, bool cond)
    {
        if (b >= e)
            return;
        cfg.blocks[block].stmts.push_back({b, e, cond, toks[b].line});
    }

    /** Exit state of a parsed region: last block + fallthrough-alive. */
    struct Flow
    {
        std::size_t block;
        bool live;
    };

    /** Scan past one plain statement: to ';' at depth 0, groups skipped. */
    std::size_t statementEnd(std::size_t i, std::size_t e)
    {
        std::size_t k = i;
        while (k < e) {
            const Token &t = toks[k];
            if (t.kind == Token::Kind::Punct) {
                if (t.text == ";")
                    return k + 1;
                if (t.text == "(" || t.text == "[" || t.text == "{") {
                    std::size_t close = matchForward(toks, k);
                    if (close >= e) {
                        failed = true;
                        return e;
                    }
                    k = close + 1;
                    continue;
                }
                if (t.text == "}") {
                    failed = true;
                    return e;
                }
            }
            ++k;
        }
        return e;
    }

    /** Parse one statement starting at `i`; advances `i` past it. */
    Flow parseStmt(std::size_t cur, std::size_t &i, std::size_t e,
                   std::size_t brk, std::size_t cont)
    {
        if (failed || i >= e)
            return {cur, true};
        const Token &t = toks[i];

        if (isPunct(t, ";")) {
            ++i;
            return {cur, true};
        }
        if (isPunct(t, "{")) {
            const std::size_t close = matchForward(toks, i);
            if (close >= e) {
                failed = true;
                return {cur, true};
            }
            Flow f = parseSeq(cur, i + 1, close, brk, cont);
            i = close + 1;
            return f;
        }
        if (isIdent(t, "if"))
            return parseIf(cur, i, e, brk, cont);
        if (isIdent(t, "while"))
            return parseWhile(cur, i, e);
        if (isIdent(t, "for"))
            return parseFor(cur, i, e);
        if (isIdent(t, "do"))
            return parseDo(cur, i, e);
        if (isIdent(t, "switch"))
            return parseSwitch(cur, i, e, cont);
        if (isIdent(t, "try"))
            return parseTry(cur, i, e, brk, cont);
        if (isIdent(t, "return") || isIdent(t, "throw")
            || isIdent(t, "co_return")) {
            const std::size_t end = statementEnd(i, e);
            addStmt(cur, i, end, false);
            i = end;
            return {cur, false};
        }
        if (isIdent(t, "break")) {
            const std::size_t end = statementEnd(i, e);
            addStmt(cur, i, end, false);
            if (brk != npos)
                edge(cur, brk);
            i = end;
            return {cur, false};
        }
        if (isIdent(t, "continue")) {
            const std::size_t end = statementEnd(i, e);
            addStmt(cur, i, end, false);
            if (cont != npos)
                edge(cur, cont);
            i = end;
            return {cur, false};
        }
        if (isIdent(t, "else") || isIdent(t, "case")
            || isIdent(t, "default")) {
            // Only reachable on malformed nesting.
            failed = true;
            return {cur, true};
        }

        const std::size_t end = statementEnd(i, e);
        addStmt(cur, i, end, false);
        i = end;
        return {cur, true};
    }

    /** Expect '(' at or after `i` (skipping `constexpr`); parse group. */
    bool condGroup(std::size_t &i, std::size_t e, std::size_t &open,
                   std::size_t &close)
    {
        std::size_t j = i + 1;
        if (j < e && isIdent(toks[j], "constexpr"))
            ++j;
        if (j >= e || !isPunct(toks[j], "(")) {
            failed = true;
            return false;
        }
        open = j;
        close = matchForward(toks, j);
        if (close >= e) {
            failed = true;
            return false;
        }
        i = close + 1;
        return true;
    }

    Flow parseIf(std::size_t cur, std::size_t &i, std::size_t e,
                 std::size_t brk, std::size_t cont)
    {
        std::size_t open = 0, close = 0;
        if (!condGroup(i, e, open, close))
            return {cur, true};
        const std::size_t c = newBlock();
        edge(cur, c);
        addStmt(c, open + 1, close, true);

        const std::size_t then_b = newBlock();
        edge(c, then_b);
        Flow tf = parseStmt(then_b, i, e, brk, cont);
        if (failed)
            return {cur, true};

        if (i < e && isIdent(toks[i], "else")) {
            ++i;
            const std::size_t else_b = newBlock();
            edge(c, else_b);
            Flow ef = parseStmt(else_b, i, e, brk, cont);
            if (failed)
                return {cur, true};
            const std::size_t join = newBlock();
            bool live = false;
            if (tf.live) {
                edge(tf.block, join);
                live = true;
            }
            if (ef.live) {
                edge(ef.block, join);
                live = true;
            }
            return {join, live};
        }

        const std::size_t join = newBlock();
        edge(c, join); // condition-false path
        if (tf.live)
            edge(tf.block, join);
        return {join, true};
    }

    Flow parseWhile(std::size_t cur, std::size_t &i, std::size_t e)
    {
        std::size_t open = 0, close = 0;
        if (!condGroup(i, e, open, close))
            return {cur, true};
        const std::size_t c = newBlock();
        edge(cur, c);
        addStmt(c, open + 1, close, true);
        const std::size_t body = newBlock();
        const std::size_t exit = newBlock();
        edge(c, body);
        edge(c, exit);
        Flow bf = parseStmt(body, i, e, exit, c);
        if (failed)
            return {cur, true};
        if (bf.live)
            edge(bf.block, c);
        return {exit, true};
    }

    Flow parseFor(std::size_t cur, std::size_t &i, std::size_t e)
    {
        // The whole header (init; cond; step) is one condition
        // statement: precise enough for guard detection, and it keeps
        // range-for free of special cases.
        std::size_t open = 0, close = 0;
        if (!condGroup(i, e, open, close))
            return {cur, true};
        const std::size_t c = newBlock();
        edge(cur, c);
        addStmt(c, open + 1, close, true);
        const std::size_t body = newBlock();
        const std::size_t exit = newBlock();
        edge(c, body);
        edge(c, exit);
        Flow bf = parseStmt(body, i, e, exit, c);
        if (failed)
            return {cur, true};
        if (bf.live)
            edge(bf.block, c);
        return {exit, true};
    }

    Flow parseDo(std::size_t cur, std::size_t &i, std::size_t e)
    {
        ++i; // 'do'
        const std::size_t body = newBlock();
        const std::size_t c = newBlock();
        const std::size_t exit = newBlock();
        edge(cur, body);
        Flow bf = parseStmt(body, i, e, exit, c);
        if (failed)
            return {cur, true};
        if (bf.live)
            edge(bf.block, c);
        if (i >= e || !isIdent(toks[i], "while")) {
            failed = true;
            return {cur, true};
        }
        std::size_t open = 0, close = 0;
        if (!condGroup(i, e, open, close))
            return {cur, true};
        addStmt(c, open + 1, close, true);
        edge(c, body);
        edge(c, exit);
        if (i < e && isPunct(toks[i], ";"))
            ++i;
        return {exit, true};
    }

    Flow parseSwitch(std::size_t cur, std::size_t &i, std::size_t e,
                     std::size_t cont)
    {
        std::size_t open = 0, close = 0;
        if (!condGroup(i, e, open, close))
            return {cur, true};
        const std::size_t c = newBlock();
        edge(cur, c);
        addStmt(c, open + 1, close, true);

        if (i >= e || !isPunct(toks[i], "{")) {
            failed = true;
            return {cur, true};
        }
        const std::size_t body_close = matchForward(toks, i);
        if (body_close >= e) {
            failed = true;
            return {cur, true};
        }
        const std::size_t exit = newBlock();

        std::size_t pos = i + 1;
        std::size_t arm = npos;
        bool live = false;
        while (pos < body_close && !failed) {
            if (isIdent(toks[pos], "case") || isIdent(toks[pos], "default")) {
                // Scan the label to its ':' (groups skipped).
                std::size_t colon = pos + 1;
                while (colon < body_close && !isPunct(toks[colon], ":")) {
                    if (toks[colon].kind == Token::Kind::Punct
                        && (toks[colon].text == "(" || toks[colon].text == "["
                            || toks[colon].text == "{"))
                        colon = matchForward(toks, colon);
                    else
                        ++colon;
                }
                if (colon >= body_close) {
                    failed = true;
                    break;
                }
                const std::size_t nb = newBlock();
                edge(c, nb);
                if (arm != npos && live)
                    edge(arm, nb); // fallthrough
                arm = nb;
                live = true;
                pos = colon + 1;
                continue;
            }
            if (arm == npos) {
                // Statements before the first label never execute.
                arm = newBlock();
                live = true;
            }
            Flow f = parseStmt(arm, pos, body_close, exit, cont);
            arm = f.block;
            live = f.live;
        }
        if (failed)
            return {cur, true};
        if (arm != npos && live)
            edge(arm, exit);
        edge(c, exit); // conservative no-match path
        i = body_close + 1;
        return {exit, true};
    }

    Flow parseTry(std::size_t cur, std::size_t &i, std::size_t e,
                  std::size_t brk, std::size_t cont)
    {
        ++i; // 'try'
        const std::size_t before = cur;
        Flow tf = parseStmt(cur, i, e, brk, cont);
        if (failed)
            return {cur, true};
        const std::size_t join = newBlock();
        if (tf.live)
            edge(tf.block, join);
        while (i < e && isIdent(toks[i], "catch") && !failed) {
            std::size_t open = 0, close = 0;
            if (!condGroup(i, e, open, close))
                return {cur, true};
            const std::size_t handler = newBlock();
            edge(before, handler);
            Flow hf = parseStmt(handler, i, e, brk, cont);
            if (hf.live)
                edge(hf.block, join);
        }
        return {join, true};
    }

    Flow parseSeq(std::size_t cur, std::size_t b, std::size_t e,
                  std::size_t brk, std::size_t cont)
    {
        bool live = true;
        std::size_t i = b;
        std::size_t guard = 0;
        while (i < e && !failed) {
            if (++guard > toks.size() + 16) {
                failed = true; // no-progress backstop
                break;
            }
            if (!live) {
                // Dead code after return/break still gets parsed (its
                // sinks inherit every dominator, i.e. read as guarded).
                cur = newBlock();
                live = true;
            }
            const std::size_t before = i;
            Flow f = parseStmt(cur, i, e, brk, cont);
            if (i == before) {
                failed = true;
                break;
            }
            cur = f.block;
            live = f.live;
        }
        return {cur, live};
    }
};

} // namespace

Cfg
buildCfg(const std::vector<Token> &toks, std::size_t begin, std::size_t end)
{
    if (begin > end || end > toks.size()) {
        Cfg cfg;
        cfg.blocks.emplace_back();
        cfg.straight_line = true;
        return cfg;
    }
    CfgBuilder b(toks);
    const std::size_t entry = b.newBlock();
    b.parseSeq(entry, begin, end, CfgBuilder::npos, CfgBuilder::npos);
    if (!b.failed)
        return std::move(b.cfg);

    // Fallback: one block, top-level ';' splits, order preserved.
    Cfg cfg;
    cfg.straight_line = true;
    cfg.blocks.emplace_back();
    std::size_t i = begin;
    while (i < end) {
        std::size_t k = i;
        while (k < end && !isPunct(toks[k], ";")) {
            if (toks[k].kind == Token::Kind::Punct
                && (toks[k].text == "(" || toks[k].text == "["
                    || toks[k].text == "{")) {
                const std::size_t close = matchForward(toks, k);
                k = close >= end ? end : close + 1;
            } else {
                ++k;
            }
        }
        const std::size_t stop = std::min(k + 1, end);
        if (stop > i)
            cfg.blocks[0].stmts.push_back(
                {i, stop, false, toks[i].line});
        i = stop;
    }
    return cfg;
}

std::vector<std::vector<bool>>
dominators(const Cfg &cfg)
{
    const std::size_t n = cfg.blocks.size();
    std::vector<std::vector<std::size_t>> preds(n);
    for (std::size_t b = 0; b < n; ++b)
        for (std::size_t s : cfg.blocks[b].succs)
            preds[s].push_back(b);

    std::vector<std::vector<bool>> dom(n, std::vector<bool>(n, true));
    if (n == 0)
        return dom;
    dom[0].assign(n, false);
    dom[0][0] = true;

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = 1; b < n; ++b) {
            if (preds[b].empty())
                continue; // unreachable: keep the all-dominators init
            std::vector<bool> next(n, true);
            for (std::size_t p : preds[b])
                for (std::size_t d = 0; d < n; ++d)
                    next[d] = next[d] && dom[p][d];
            next[b] = true;
            if (next != dom[b]) {
                dom[b] = std::move(next);
                changed = true;
            }
        }
    }
    return dom;
}

// -------------------------------------------------- function indexing

std::vector<FuncDef>
indexFunctions(const std::vector<Token> &toks)
{
    std::vector<FuncDef> out;
    const std::size_t n = toks.size();
    for (std::size_t i = 0; i + 1 < n; ++i) {
        if (toks[i].kind != Token::Kind::Identifier
            || !isPunct(toks[i + 1], "(") || isControlKeyword(toks[i].text))
            continue;
        const std::size_t close = matchForward(toks, i + 1);
        if (close >= n)
            continue;

        // Skip trailing qualifiers up to the body: const/noexcept/
        // override/final, THERMCTL_* annotation macros, trailing
        // return types, and constructor initializer lists.
        std::size_t after = close + 1;
        bool plausible = true;
        while (after < n && plausible) {
            const Token &q = toks[after];
            if (isIdent(q, "const") || isIdent(q, "noexcept")
                || isIdent(q, "override") || isIdent(q, "final")
                || isIdent(q, "mutable")) {
                ++after;
            } else if (q.kind == Token::Kind::Identifier
                       && startsWith(q.text, "THERMCTL_") && after + 1 < n
                       && isPunct(toks[after + 1], "(")) {
                after = matchForward(toks, after + 1) + 1;
            } else if (isPunct(q, "(")) {
                after = matchForward(toks, after) + 1; // noexcept(expr)
            } else if (isPunct(q, "-") && after + 1 < n
                       && isPunct(toks[after + 1], ">")) {
                after += 2; // trailing return type: scan to body
                while (after < n && !isPunct(toks[after], "{")
                       && !isPunct(toks[after], ";")) {
                    if (toks[after].kind == Token::Kind::Punct
                        && (toks[after].text == "("
                            || toks[after].text == "["))
                        after = matchForward(toks, after) + 1;
                    else
                        ++after;
                }
            } else if (isPunct(q, ":")) {
                ++after; // ctor initializer list: scan to body
                while (after < n && !isPunct(toks[after], "{")
                       && !isPunct(toks[after], ";")) {
                    if (toks[after].kind == Token::Kind::Punct
                        && (toks[after].text == "("
                            || toks[after].text == "["))
                        after = matchForward(toks, after) + 1;
                    else
                        ++after;
                }
            } else {
                break;
            }
        }
        if (after >= n || !isPunct(toks[after], "{"))
            continue;
        const std::size_t body_close = matchForward(toks, after);
        if (body_close >= n)
            continue;

        FuncDef fd;
        fd.name = toks[i].text;
        if (i >= 2 && isPunct(toks[i - 1], "::")
            && toks[i - 2].kind == Token::Kind::Identifier)
            fd.qualifier = toks[i - 2].text;
        fd.params_begin = i + 1;
        fd.params_end = close;
        fd.body_begin = after;
        fd.body_end = body_close;
        fd.line = toks[i].line;
        out.push_back(std::move(fd));
    }
    return out;
}

// ---------------------------------------------------- struct indexing

namespace
{

bool
isMemberSkipKeyword(std::string_view s)
{
    static const std::set<std::string, std::less<>> kw = {
        "using",  "typedef", "friend",    "static_assert", "template",
        "enum",   "static",  "public",    "private",       "protected",
        "operator",
    };
    return kw.count(s) != 0;
}

/**
 * Parse one member declaration starting at `i` inside a struct body
 * ending at `close`. Appends declared field names and returns the
 * index past the declaration (past ';', or past an inline method
 * body's closing '}').
 */
std::size_t
parseMember(const std::vector<Token> &toks, std::size_t i, std::size_t close,
            std::vector<FieldDef> &fields)
{
    bool in_init = false;
    bool is_method = false;
    bool saw_paren_group = false;
    std::vector<FieldDef> names;

    std::size_t k = i;
    while (k < close) {
        const Token &t = toks[k];
        if (t.kind == Token::Kind::Punct) {
            if (t.text == ";") {
                ++k;
                break;
            }
            if (t.text == "=") {
                in_init = true;
                ++k;
                continue;
            }
            if (t.text == ",") {
                in_init = false;
                ++k;
                continue;
            }
            if (t.text == "(") {
                saw_paren_group = true;
                k = matchForward(toks, k) + 1;
                continue;
            }
            if (t.text == "[") {
                k = matchForward(toks, k) + 1;
                continue;
            }
            if (t.text == "{") {
                const std::size_t bc = matchForward(toks, k);
                if (is_method || (saw_paren_group && !in_init && names.empty())) {
                    // Inline method body ends the declaration; eat an
                    // optional trailing ';'.
                    k = bc + 1;
                    if (k < close && isPunct(toks[k], ";"))
                        ++k;
                    return k;
                }
                k = bc + 1; // brace initializer
                continue;
            }
            ++k;
            continue;
        }
        if (t.kind == Token::Kind::Identifier && !in_init) {
            if (isMemberSkipKeyword(t.text) && names.empty()) {
                // Not an instance field; skip the whole declaration
                // (handles nested enum bodies via the group skips).
                while (k < close && !isPunct(toks[k], ";")) {
                    if (toks[k].kind == Token::Kind::Punct
                        && (toks[k].text == "(" || toks[k].text == "["
                            || toks[k].text == "{"))
                        k = matchForward(toks, k) + 1;
                    else
                        ++k;
                }
                return std::min(k + 1, close);
            }
            if ((t.text == "struct" || t.text == "class") && names.empty()) {
                // Nested type: indexed by the outer scan on its own;
                // here, skip to its body so a trailing declarator
                // (`struct Inner { ... } field;`) is still collected.
                ++k;
                while (k < close && !isPunct(toks[k], "{")
                       && !isPunct(toks[k], ";"))
                    ++k;
                if (k < close && isPunct(toks[k], "{"))
                    k = matchForward(toks, k) + 1;
                continue;
            }
            if (k + 1 < close) {
                const Token &nx = toks[k + 1];
                if (isPunct(nx, "<")) {
                    const std::size_t past = skipAngles(toks, k + 1, close);
                    if (past != k + 1) {
                        k = past; // template arguments of the type
                        continue;
                    }
                }
                if (isPunct(nx, "(")) {
                    is_method = true;
                    ++k;
                    continue;
                }
                if (isPunct(nx, ";") || isPunct(nx, ",") || isPunct(nx, "=")
                    || isPunct(nx, "{") || isPunct(nx, "["))
                    names.push_back({t.text, t.line});
            }
        }
        ++k;
    }

    if (!is_method)
        for (FieldDef &f : names)
            fields.push_back(std::move(f));
    return std::min(std::max(k, i + 1), close);
}

} // namespace

std::vector<StructDef>
indexStructs(const std::vector<Token> &toks, const std::string &file)
{
    std::vector<StructDef> out;
    const std::size_t n = toks.size();
    for (std::size_t i = 0; i + 1 < n; ++i) {
        if (toks[i].kind != Token::Kind::Identifier
            || (toks[i].text != "struct" && toks[i].text != "class"))
            continue;
        if (i > 0 && (isIdent(toks[i - 1], "enum")
                      || isIdent(toks[i - 1], "friend")))
            continue;
        std::size_t j = i + 1;
        if (j >= n || toks[j].kind != Token::Kind::Identifier)
            continue; // anonymous
        StructDef sd;
        sd.name = toks[j].text;
        sd.file = file;
        sd.line = toks[j].line;
        ++j;
        if (j < n && isIdent(toks[j], "final"))
            ++j;
        if (j < n && isPunct(toks[j], ":")) {
            ++j; // base clause
            while (j < n && !isPunct(toks[j], "{") && !isPunct(toks[j], ";")) {
                if (toks[j].kind == Token::Kind::Identifier && j + 1 < n
                    && isPunct(toks[j + 1], "<")) {
                    const std::size_t past = skipAngles(toks, j + 1, n);
                    j = past != j + 1 ? past : j + 1;
                } else {
                    ++j;
                }
            }
        }
        if (j >= n || !isPunct(toks[j], "{"))
            continue; // forward declaration / elaborated type
        const std::size_t close = matchForward(toks, j);
        if (close >= n)
            continue;

        std::size_t k = j + 1;
        while (k < close) {
            if (toks[k].kind == Token::Kind::Identifier
                && (toks[k].text == "public" || toks[k].text == "private"
                    || toks[k].text == "protected")
                && k + 1 < close && isPunct(toks[k + 1], ":")) {
                k += 2;
                continue;
            }
            if (isPunct(toks[k], ";")) {
                ++k;
                continue;
            }
            k = parseMember(toks, k, close, sd.fields);
        }
        out.push_back(std::move(sd));
    }
    return out;
}

// --------------------------------------------------------- alloc-bound

namespace
{

bool
isReaderReadMethod(std::string_view s)
{
    static const std::set<std::string, std::less<>> m = {
        "u8",  "u16", "u32",   "u64",    "i8",   "i16", "i32",
        "i64", "f32", "f64",   "str",    "varint", "bytes",
    };
    return m.count(s) != 0;
}

bool
isDecodeName(std::string_view s)
{
    return startsWith(s, "decode") || startsWith(s, "deserialize");
}

/** How a value became attacker-controlled. */
enum class TaintKind
{
    ReaderRead, ///< assigned from a ByteReader read method
    DecodeOut,  ///< out-param of a decode*/deserialize* call
};

struct TaintInfo
{
    TaintKind kind = TaintKind::ReaderRead;
    std::size_t stmt_begin = 0; ///< token index of the tainting stmt
    bool taint_is_cond = false; ///< tainting stmt is a condition
    std::vector<std::string> guard_names; ///< DecodeOut: fn + status var
};

/** A (block, stmt) position inside a Cfg. */
struct StmtRef
{
    std::size_t block = 0;
    std::size_t stmt = 0;
};

/** Tokens that make a comparison look like a size bound. */
bool
stmtLooksLikeBound(const std::vector<Token> &toks, const CfgStmt &s)
{
    bool number = false, relational = false;
    for (std::size_t k = s.begin; k < s.end; ++k) {
        const Token &t = toks[k];
        if (t.kind == Token::Kind::Identifier) {
            if (t.text == "remaining" || t.text == "sizeof"
                || t.text == "size" || t.text == "length"
                || t.text == "capacity" || t.text == "empty"
                || t.text.find("Max") != std::string::npos
                || t.text.find("Min") != std::string::npos
                || t.text == "max" || t.text == "min")
                return true;
        } else if (t.kind == Token::Kind::Number) {
            number = true;
        } else if (t.kind == Token::Kind::Punct
                   && (t.text == "<" || t.text == ">")) {
            relational = true;
        }
    }
    return number && relational;
}

bool
stmtMentions(const std::vector<Token> &toks, const CfgStmt &s,
             std::string_view name)
{
    for (std::size_t k = s.begin; k < s.end; ++k)
        if (toks[k].kind == Token::Kind::Identifier && toks[k].text == name)
            return true;
    return false;
}

/** Last identifier before the first top-level assignment '='. */
std::size_t
assignedName(const std::vector<Token> &toks, const CfgStmt &s)
{
    std::size_t last_ident = static_cast<std::size_t>(-1);
    for (std::size_t k = s.begin; k < s.end; ++k) {
        const Token &t = toks[k];
        if (t.kind == Token::Kind::Punct) {
            if (t.text == "(" || t.text == "[" || t.text == "{") {
                k = matchForward(toks, k);
                if (k >= s.end)
                    break;
                continue;
            }
            if (t.text == "=") {
                const bool cmp =
                    (k + 1 < s.end && isPunct(toks[k + 1], "="))
                    || (k > s.begin && toks[k - 1].kind == Token::Kind::Punct
                        && toks[k - 1].text != "::"
                        && toks[k - 1].text.find_first_of("=!<>+-*/%&|^")
                               != std::string::npos);
                if (cmp) {
                    if (k + 1 < s.end && isPunct(toks[k + 1], "="))
                        ++k; // skip the second '=' of '=='
                    continue;
                }
                return last_ident;
            }
        } else if (t.kind == Token::Kind::Identifier) {
            last_ident = k;
        }
    }
    return static_cast<std::size_t>(-1);
}

struct Sink
{
    std::size_t arg_begin = 0; ///< token range of the size expression
    std::size_t arg_end = 0;
    std::string what;          ///< "reserve", "resize", "new[]", ctor name
    int line = 1;
};

/** Collect allocation sinks inside one statement. */
std::vector<Sink>
findSinks(const std::vector<Token> &toks, const CfgStmt &s)
{
    std::vector<Sink> sinks;
    for (std::size_t k = s.begin; k + 1 < s.end; ++k) {
        const Token &t = toks[k];
        if (t.kind != Token::Kind::Identifier)
            continue;
        if ((t.text == "reserve" || t.text == "resize")
            && isPunct(toks[k + 1], "(")) {
            const std::size_t close = matchForward(toks, k + 1);
            if (close < s.end)
                sinks.push_back({k + 2, close, t.text, t.line});
            continue;
        }
        if (t.text == "new") {
            // `new T[n]`: the first '[' after the type spelling.
            std::size_t m = k + 1;
            while (m < s.end
                   && (toks[m].kind == Token::Kind::Identifier
                       || isPunct(toks[m], "::")))
                ++m;
            if (m + 1 < s.end && isPunct(toks[m], "[")) {
                const std::size_t close = matchForward(toks, m);
                if (close < s.end)
                    sinks.push_back({m + 1, close, "new[]", t.line});
            }
            continue;
        }
        if ((t.text == "vector" || t.text == "string" || t.text == "deque"
             || t.text == "basic_string")
            && isPunct(toks[k + 1], "<")) {
            // `std::vector<T> name(count, ...)`: first ctor argument.
            const std::size_t past = skipAngles(toks, k + 1, s.end);
            if (past == k + 1 || past + 1 >= s.end)
                continue;
            if (toks[past].kind != Token::Kind::Identifier
                || !isPunct(toks[past + 1], "("))
                continue;
            const std::size_t close = matchForward(toks, past + 1);
            if (close >= s.end)
                continue;
            std::size_t first_end = past + 2;
            int depth = 0;
            while (first_end < close) {
                const Token &a = toks[first_end];
                if (a.kind == Token::Kind::Punct) {
                    if (a.text == "(" || a.text == "[" || a.text == "{")
                        ++depth;
                    else if (a.text == ")" || a.text == "]" || a.text == "}")
                        --depth;
                    else if (a.text == "," && depth == 0)
                        break;
                }
                ++first_end;
            }
            if (first_end > past + 2)
                sinks.push_back(
                    {past + 2, first_end, t.text + " constructor", t.line});
        }
    }
    return sinks;
}

} // namespace

std::vector<Finding>
checkAllocBound(const ProjectModel &model)
{
    std::vector<Finding> findings;
    for (const SourceFile &sf : model.files()) {
        const std::vector<Token> &toks = sf.tokens;
        for (const FuncDef &fd : indexFunctions(toks)) {
            // Reader variables: `ByteReader name` in params or body.
            std::set<std::string> readers;
            for (std::size_t k = fd.params_begin;
                 k + 1 < fd.body_end; ++k) {
                if (isIdent(toks[k], "ByteReader")) {
                    std::size_t m = k + 1;
                    if (m < fd.body_end && isPunct(toks[m], "&"))
                        ++m;
                    if (m < fd.body_end
                        && toks[m].kind == Token::Kind::Identifier)
                        readers.insert(toks[m].text);
                }
            }

            const Cfg cfg = buildCfg(toks, fd.body_begin + 1, fd.body_end);
            const std::vector<std::vector<bool>> dom = dominators(cfg);

            // Statement list in token order, remembering positions.
            std::vector<std::pair<const CfgStmt *, StmtRef>> stmts;
            for (std::size_t b = 0; b < cfg.blocks.size(); ++b)
                for (std::size_t s = 0; s < cfg.blocks[b].stmts.size(); ++s)
                    stmts.push_back({&cfg.blocks[b].stmts[s], {b, s}});
            std::sort(stmts.begin(), stmts.end(),
                      [](const auto &a, const auto &b) {
                          return a.first->begin < b.first->begin;
                      });

            // ---- taint collection (token order) ----
            std::map<std::string, TaintInfo> taint;
            for (const auto &[st, ref] : stmts) {
                // a) `lhs = reader.u64(...)`
                const std::size_t lhs = assignedName(toks, *st);
                if (lhs != static_cast<std::size_t>(-1)) {
                    for (std::size_t k = lhs + 1; k + 3 < st->end; ++k) {
                        if (toks[k].kind == Token::Kind::Identifier
                            && readers.count(toks[k].text)
                            && (isPunct(toks[k + 1], ".")
                                || (isPunct(toks[k + 1], "-")
                                    && isPunct(toks[k + 2], ">")))) {
                            const std::size_t mth =
                                isPunct(toks[k + 1], ".") ? k + 2 : k + 3;
                            if (mth + 1 < st->end
                                && toks[mth].kind == Token::Kind::Identifier
                                && isReaderReadMethod(toks[mth].text)
                                && isPunct(toks[mth + 1], "(")) {
                                TaintInfo ti;
                                ti.kind = TaintKind::ReaderRead;
                                ti.stmt_begin = st->begin;
                                ti.taint_is_cond = st->is_cond;
                                taint[toks[lhs].text] = std::move(ti);
                                break;
                            }
                        }
                    }
                }

                // b) memcpy into a local inside a decode function
                //    (the trace decoder's header pattern).
                if (isDecodeName(fd.name)) {
                    for (std::size_t k = st->begin; k + 2 < st->end; ++k) {
                        if (isIdent(toks[k], "memcpy")
                            && isPunct(toks[k + 1], "(")) {
                            std::size_t m = k + 2;
                            if (m < st->end && isPunct(toks[m], "&"))
                                ++m;
                            if (m < st->end
                                && toks[m].kind == Token::Kind::Identifier) {
                                TaintInfo ti;
                                ti.kind = TaintKind::ReaderRead;
                                ti.stmt_begin = st->begin;
                                ti.taint_is_cond = st->is_cond;
                                taint[toks[m].text] = std::move(ti);
                            }
                        }
                    }
                }

                // c) out-params of decode*/deserialize* calls.
                for (std::size_t k = st->begin; k + 1 < st->end; ++k) {
                    if (toks[k].kind != Token::Kind::Identifier
                        || !isDecodeName(toks[k].text)
                        || !isPunct(toks[k + 1], "("))
                        continue;
                    const std::size_t close = matchForward(toks, k + 1);
                    if (close >= st->end)
                        continue;
                    std::vector<std::string> guards;
                    guards.push_back(toks[k].text);
                    if (lhs != static_cast<std::size_t>(-1) && lhs < k)
                        guards.push_back(toks[lhs].text);
                    // Args: last identifier of each top-level argument.
                    std::size_t arg_last = static_cast<std::size_t>(-1);
                    int depth = 0;
                    for (std::size_t m = k + 2; m <= close; ++m) {
                        const Token &a = toks[m];
                        const bool top_comma =
                            m == close
                            || (a.kind == Token::Kind::Punct
                                && a.text == "," && depth == 0);
                        if (top_comma) {
                            if (arg_last != static_cast<std::size_t>(-1)) {
                                const std::string &nm = toks[arg_last].text;
                                if (!readers.count(nm)
                                    && (arg_last + 1 >= close
                                        || !isPunct(toks[arg_last + 1],
                                                    "("))) {
                                    TaintInfo ti;
                                    ti.kind = TaintKind::DecodeOut;
                                    ti.stmt_begin = st->begin;
                                    ti.taint_is_cond = st->is_cond;
                                    ti.guard_names = guards;
                                    taint[nm] = std::move(ti);
                                }
                            }
                            arg_last = static_cast<std::size_t>(-1);
                            continue;
                        }
                        if (a.kind == Token::Kind::Punct) {
                            if (a.text == "(" || a.text == "["
                                || a.text == "{")
                                ++depth;
                            else if (a.text == ")" || a.text == "]"
                                     || a.text == "}")
                                --depth;
                        } else if (a.kind == Token::Kind::Identifier
                                   && depth == 0) {
                            arg_last = m;
                        }
                    }
                    k = close;
                }
            }

            // ---- sinks ----
            for (const auto &[st, ref] : stmts) {
                for (const Sink &sk : findSinks(toks, *st)) {
                    // A clamp anywhere in the size expression
                    // (std::min, std::clamp, k*Max*) is a guard.
                    bool clamp = false;
                    for (std::size_t m = sk.arg_begin; m < sk.arg_end; ++m) {
                        const Token &a = toks[m];
                        if (a.kind == Token::Kind::Identifier
                            && (a.text == "min" || a.text == "max"
                                || a.text == "clamp"
                                || a.text.find("Max") != std::string::npos
                                || a.text.find("Min") != std::string::npos))
                            clamp = true;
                    }

                    // Value uses: walk each member chain; a chain that
                    // ends in a call (x.size(), spec.points()) is a
                    // computed result, not a tainted count — except a
                    // ByteReader read, which is the rawest taint there
                    // is.
                    bool direct_read = false;
                    std::string tainted_name;
                    const TaintInfo *tainted = nullptr;
                    std::size_t m = sk.arg_begin;
                    while (m < sk.arg_end) {
                        if (toks[m].kind != Token::Kind::Identifier) {
                            ++m;
                            continue;
                        }
                        std::vector<std::size_t> comps{m};
                        std::size_t j = m;
                        while (true) {
                            if (j + 2 < sk.arg_end
                                && (isPunct(toks[j + 1], ".")
                                    || isPunct(toks[j + 1], "::"))
                                && toks[j + 2].kind
                                       == Token::Kind::Identifier) {
                                j += 2;
                                comps.push_back(j);
                            } else if (j + 3 < sk.arg_end
                                       && isPunct(toks[j + 1], "-")
                                       && isPunct(toks[j + 2], ">")
                                       && toks[j + 3].kind
                                              == Token::Kind::Identifier) {
                                j += 3;
                                comps.push_back(j);
                            } else {
                                break;
                            }
                        }
                        const bool is_call = j + 1 < sk.arg_end
                                             && isPunct(toks[j + 1], "(");
                        if (is_call) {
                            if (comps.size() >= 2
                                && isReaderReadMethod(toks[j].text)
                                && readers.count(toks[comps.front()].text))
                                direct_read = true;
                            m = j + 1; // call args scanned next rounds
                            continue;
                        }
                        for (std::size_t c : comps) {
                            auto it = taint.find(toks[c].text);
                            if (it != taint.end()
                                && it->second.stmt_begin < st->begin
                                && !tainted) {
                                tainted = &it->second;
                                tainted_name = toks[c].text;
                            }
                        }
                        m = j + 1;
                    }
                    if (clamp || (!tainted && !direct_read))
                        continue;

                    // Guard search: statements in strictly dominating
                    // blocks, plus earlier statements in the sink's
                    // own block.
                    bool guarded = false;
                    auto scanStmt = [&](const CfgStmt &g) {
                        if (guarded)
                            return;
                        if (tainted
                            && tainted->kind == TaintKind::DecodeOut) {
                            const bool self =
                                g.begin == tainted->stmt_begin;
                            if (self && !tainted->taint_is_cond)
                                return;
                            for (const std::string &nm :
                                 tainted->guard_names)
                                if (stmtMentions(toks, g, nm))
                                    guarded = true;
                            return;
                        }
                        if (tainted && g.begin == tainted->stmt_begin)
                            return; // the tainting read is no guard
                        if (tainted && !stmtMentions(toks, g,
                                                     tainted_name))
                            return;
                        if (!tainted)
                            return; // direct reads have no guard var
                        if (stmtLooksLikeBound(toks, g))
                            guarded = true;
                    };
                    for (std::size_t d = 0;
                         d < cfg.blocks.size() && !guarded; ++d) {
                        if (d == ref.block || !dom[ref.block][d])
                            continue;
                        for (const CfgStmt &g : cfg.blocks[d].stmts)
                            scanStmt(g);
                    }
                    for (std::size_t s2 = 0;
                         s2 < ref.stmt && !guarded; ++s2)
                        scanStmt(cfg.blocks[ref.block].stmts[s2]);
                    if (guarded)
                        continue;

                    Finding f;
                    f.file = sf.path;
                    f.line = sk.line;
                    f.rule = "alloc-bound";
                    if (direct_read && !tainted)
                        f.message = "allocation size for " + sk.what + " in "
                                    + fd.name
                                    + "() comes straight from a ByteReader "
                                      "read; clamp it or check remaining() "
                                      "first";
                    else
                        f.message =
                            "tainted size '" + tainted_name + "' ("
                            + (tainted->kind == TaintKind::DecodeOut
                                   ? "decode out-param"
                                   : "ByteReader read")
                            + ") reaches " + sk.what + " in " + fd.name
                            + "() without a dominating bound check "
                              "(compare against remaining(), a k*Max* "
                              "bound, or a byte-length cross-check)";
                    findings.push_back(std::move(f));
                }
            }
        }
    }
    return findings;
}

// ------------------------------------------------------ field-coverage

namespace
{

/** Roles a coverage function can play for a struct. */
enum class Role
{
    Digest = 0,
    Encode = 1,
    Decode = 2,
};

const char *
roleVerb(Role r)
{
    switch (r) {
    case Role::Digest:
        return "fed to the digest";
    case Role::Encode:
        return "encoded";
    default:
        return "decoded";
    }
}

/** Identifiers in [b, e) with template-argument groups skipped. */
std::vector<std::string>
identsOutsideAngles(const std::vector<Token> &toks, std::size_t b,
                    std::size_t e)
{
    std::vector<std::string> out;
    for (std::size_t k = b; k < e; ++k) {
        if (toks[k].kind != Token::Kind::Identifier)
            continue;
        if (k + 1 < e && isPunct(toks[k + 1], "<")) {
            const std::size_t past = skipAngles(toks, k + 1, e);
            if (past != k + 1) {
                out.push_back(toks[k].text);
                k = past - 1;
                continue;
            }
        }
        out.push_back(toks[k].text);
    }
    return out;
}

struct CoverageFn
{
    std::string name;
    std::string file;
    int line = 1;
};

struct RoleCoverage
{
    std::set<std::string> body_idents;
    std::vector<CoverageFn> fns;
};

} // namespace

std::vector<Finding>
checkFieldCoverage(const ProjectModel &model,
                   const std::set<std::string> &allowed_fields)
{
    // Struct index across the whole model (first definition wins).
    std::map<std::string, StructDef> structs;
    for (const SourceFile &sf : model.files())
        for (StructDef &sd : indexStructs(sf.tokens, sf.path))
            structs.emplace(sd.name, std::move(sd));

    // Helper types never impose coverage on themselves.
    static const std::set<std::string> kHelpers = {
        "HashStream", "ByteReader", "ByteWriter",
    };

    std::map<std::string, std::map<Role, RoleCoverage>> coverage;
    auto record = [&](const std::string &struct_name, Role role,
                      const SourceFile &sf, const FuncDef &fd) {
        RoleCoverage &rc = coverage[struct_name][role];
        for (std::size_t k = fd.body_begin; k < fd.body_end; ++k)
            if (sf.tokens[k].kind == Token::Kind::Identifier)
                rc.body_idents.insert(sf.tokens[k].text);
        rc.fns.push_back({fd.name, sf.path, fd.line});
    };

    for (const SourceFile &sf : model.files()) {
        for (const FuncDef &fd : indexFunctions(sf.tokens)) {
            // Struct types referenced by the parameter list (template
            // arguments excluded: vector<MicroOp> is not a MicroOp
            // coverage contract).
            std::vector<std::string> param_structs;
            for (const std::string &id : identsOutsideAngles(
                     sf.tokens, fd.params_begin + 1, fd.params_end))
                if (structs.count(id) && !kHelpers.count(id))
                    param_structs.push_back(id);

            bool hash_in_sig = false;
            for (std::size_t k = fd.params_begin; k < fd.params_end; ++k)
                if (isIdent(sf.tokens[k], "HashStream"))
                    hash_in_sig = true;
            bool hash_in_body = false;
            for (std::size_t k = fd.body_begin; k < fd.body_end; ++k)
                if (isIdent(sf.tokens[k], "HashStream"))
                    hash_in_body = true;

            const bool digest_fn =
                (fd.name == "feed" && hash_in_sig)
                || (hash_in_body && !param_structs.empty());
            if (digest_fn)
                for (const std::string &s : param_structs)
                    record(s, Role::Digest, sf, fd);

            if (startsWith(fd.name, "encode")
                || startsWith(fd.name, "serialize"))
                for (const std::string &s : param_structs)
                    record(s, Role::Encode, sf, fd);
            if (startsWith(fd.name, "decode")
                || startsWith(fd.name, "deserialize"))
                for (const std::string &s : param_structs)
                    record(s, Role::Decode, sf, fd);

            // Member encode()/decode(): the struct is *this.
            if (!fd.qualifier.empty() && structs.count(fd.qualifier)
                && !kHelpers.count(fd.qualifier)) {
                if (fd.name == "encode")
                    record(fd.qualifier, Role::Encode, sf, fd);
                else if (fd.name == "decode")
                    record(fd.qualifier, Role::Decode, sf, fd);
            }
        }
    }

    std::vector<Finding> findings;
    for (const auto &[struct_name, roles] : coverage) {
        auto sit = structs.find(struct_name);
        if (sit == structs.end())
            continue;
        const StructDef &sd = sit->second;
        for (const auto &[role, rc] : roles) {
            for (const FieldDef &fl : sd.fields) {
                if (allowed_fields.count(struct_name + "::" + fl.name))
                    continue;
                if (rc.body_idents.count(fl.name))
                    continue;
                const CoverageFn &fn = rc.fns.front();
                Finding f;
                f.file = fn.file;
                f.line = fn.line;
                f.rule = "field-coverage";
                f.message = "field '" + struct_name + "::" + fl.name
                            + "' (declared at " + sd.file + ":"
                            + std::to_string(fl.line) + ") is never "
                            + roleVerb(role) + " by " + fn.name
                            + "(); add it or exclude it with "
                              "--allow-field "
                            + struct_name + "::" + fl.name;
                findings.push_back(std::move(f));
            }
        }
    }
    return findings;
}

} // namespace thermctl::analysis
