/**
 * @file
 * thermctl_loadgen — open-loop load generator for thermctl_serve.
 *
 * Usage:
 *   thermctl_loadgen [options]
 *     --socket ENDPOINT  "unix:PATH", "tcp:HOST:PORT", or a bare socket
 *                        path (default: the daemon's default socket)
 *     --connect ENDPOINT same as --socket but meant to be repeated: with
 *                        several endpoints the connection pool is dealt
 *                        round-robin across them, so one loadgen drives
 *                        a whole cluster of serve nodes
 *     --rate R           target arrivals per second (default 50)
 *     --conns N          persistent connections (default 4)
 *     --duration S       seconds of arrivals (default 10)
 *     --seed S           arrival/mix randomness seed (default 1)
 *     --mix SPEC         request mix weights, e.g. "run=8,cache=2,sweep=0"
 *                        (default run=8,cache=2)
 *     --bench NAME       benchmark for generated points (default
 *                        186.crafty)
 *     --policy NAME      policy for generated points (default none)
 *     --warmup N         warm-up cycles per point (default 1000)
 *     --cycles N         measured cycles per point (default 10000)
 *     --cores N          cores per generated point (default 1; >1 routes
 *                        through the multicore engine, DESIGN.md §15)
 *     --fake-work-us N   calibrated client-side work per completion,
 *                        microseconds (default 0)
 *     --max-wait-ms N    grace for outstanding replies after the last
 *                        arrival (default 10000)
 *     --json PATH        benchmark record ("" = none; default
 *                        BENCH_serve.json)
 *
 * Methodology (after the mutated load generator): arrivals are OPEN
 * LOOP — request i is due at a precomputed, seeded exponential arrival
 * time whether or not earlier requests have completed, and latency is
 * measured from that scheduled arrival, so queueing a request behind a
 * slow server counts against the server (no coordinated omission). The
 * protocol allows one outstanding request per connection; arrivals are
 * assigned round-robin and wait in a per-connection queue when the
 * connection is busy, with that wait included in the reported latency.
 *
 * --fake-work-us models per-completion application work: a spin loop
 * touching random cache lines, calibrated against the wall clock at
 * startup so the knob is in microseconds, not iterations.
 *
 * Reports throughput and p50/p90/p99/p999 latency, overall and broken
 * down per request type (run/cache/sweep — mixes have very different
 * cost per type, so one aggregate histogram hides the tail that
 * matters); exits 0 only when every scheduled request completed without
 * transport or protocol errors (server refusals are reported but also
 * exit nonzero).
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <ctime>
#include <deque>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "serve/protocol.hh"
#include "sim/config.hh"
#include "serve/server.hh"

using namespace thermctl;
using namespace thermctl::serve;

namespace
{

using Clock = std::chrono::steady_clock;

void
usage()
{
    std::cout <<
        "usage: thermctl_loadgen [--socket ENDPOINT]\n"
        "                        [--connect ENDPOINT ...] [--rate R]\n"
        "                        [--conns N] [--duration S] [--seed S]\n"
        "                        [--mix run=W,cache=W,sweep=W]\n"
        "                        [--bench NAME] [--policy NAME]\n"
        "                        [--warmup N] [--cycles N] [--cores N]\n"
        "                        [--fake-work-us N] [--max-wait-ms N]\n"
        "                        [--json PATH]\n";
}

// ------------------------------------------------------- fake work

/**
 * Calibrated busy work standing in for per-completion application
 * processing (the mutated methodology): chase random cache lines so
 * the loop cannot be optimized away, calibrate iterations-per-µs once.
 */
class FakeWork
{
  public:
    explicit FakeWork(std::uint64_t seed) : rng_(seed)
    {
        lines_.assign(kLines, 1);
        // Time a fixed chunk to learn iterations per microsecond.
        const std::uint64_t probe = 200000;
        const Clock::time_point t0 = Clock::now();
        spin(probe);
        const double us =
            std::chrono::duration<double, std::micro>(Clock::now() - t0)
                .count();
        iters_per_us_ = us > 0.0 ? double(probe) / us : 1.0;
        if (iters_per_us_ < 1.0)
            iters_per_us_ = 1.0;
    }

    void
    run(std::uint64_t us)
    {
        if (us > 0)
            spin(static_cast<std::uint64_t>(double(us) * iters_per_us_));
    }

    double itersPerUs() const { return iters_per_us_; }

  private:
    static constexpr std::size_t kLines = 4096; // 16 pages of u64s

    void
    spin(std::uint64_t iters)
    {
        std::uint64_t acc = sink_;
        for (std::uint64_t i = 0; i < iters; ++i) {
            const std::size_t at = rng_.below(kLines);
            acc += lines_[at];
            lines_[at] = acc;
        }
        sink_ = acc; // volatile store defeats dead-code elimination
    }

    Rng rng_;
    std::vector<std::uint64_t> lines_;
    double iters_per_us_ = 1.0;
    volatile std::uint64_t sink_ = 0;
};

// ------------------------------------------------------ connections

/**
 * Connect to the daemon. Endpoint parse errors are always fatal (a bad
 * flag never gets better); socket/connect failures are fatal only when
 * `must_succeed` — reconnects mid-run return -1 instead, so a server
 * that drains or restarts costs transport errors, not the whole run.
 */
int
dial(const std::string &endpoint, bool must_succeed = true)
{
    std::string path = endpoint;
    if (endpoint.rfind("tcp:", 0) == 0) {
        const std::string rest = endpoint.substr(4);
        const std::size_t colon = rest.rfind(':');
        if (colon == std::string::npos)
            fatal("loadgen: bad tcp endpoint '", endpoint, "'");
        std::string host = rest.substr(0, colon);
        const int port = std::stoi(rest.substr(colon + 1));
        if (host == "localhost")
            host = "127.0.0.1";
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<std::uint16_t>(port));
        if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
            fatal("loadgen: bad tcp host '", host, "' (numeric only)");
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) {
            if (must_succeed)
                fatal("loadgen: socket: ", std::strerror(errno));
            return -1;
        }
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr))
            != 0) {
            if (must_succeed) {
                fatal("loadgen: connect(", endpoint,
                      "): ", std::strerror(errno));
            }
            const int saved = errno;
            ::close(fd);
            errno = saved; // callers report the connect failure
            return -1;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        return fd;
    }
    if (endpoint.rfind("unix:", 0) == 0)
        path = endpoint.substr(5);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        fatal("loadgen: socket path too long: ", path);
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (must_succeed)
            fatal("loadgen: socket: ", std::strerror(errno));
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr))
        != 0) {
        if (must_succeed)
            fatal("loadgen: connect(", path, "): ", std::strerror(errno));
        const int saved = errno;
        ::close(fd);
        errno = saved; // callers report the connect failure
        return -1;
    }
    return fd;
}

/** One scheduled arrival. */
struct Arrival
{
    double due_s = 0.0; ///< seconds after test start
    MsgType type = MsgType::RunRequest;
};

/** One persistent connection with at most one request in flight. */
struct Conn
{
    int fd = -1;
    std::string endpoint; ///< where this connection (re)dials
    FrameAssembler assembler;
    std::string wbuf;
    std::size_t woff = 0;
    std::deque<std::size_t> queue; ///< indices into the schedule
    bool in_flight = false;
    std::size_t current = 0; ///< schedule index of the in-flight request
};

struct Tally
{
    std::uint64_t completed = 0;
    std::uint64_t ok = 0;
    std::uint64_t refused = 0;         ///< typed server-side errors
    std::uint64_t transport_errors = 0;
    std::uint64_t protocol_errors = 0; ///< bad frames, wrong reply types
};

MsgType
expectedReply(MsgType req)
{
    switch (req) {
      case MsgType::RunRequest:
        return MsgType::RunReply;
      case MsgType::SweepRequest:
        return MsgType::SweepReply;
      case MsgType::CacheQueryRequest:
        return MsgType::CacheQueryReply;
      default:
        return MsgType::ErrorReply;
    }
}

/** Stable index per request type for the latency breakdown. */
std::size_t
typeIndex(MsgType req)
{
    switch (req) {
      case MsgType::RunRequest:
        return 0;
      case MsgType::CacheQueryRequest:
        return 1;
      default:
        return 2; // SweepRequest
    }
}

constexpr const char *kTypeNames[3] = {"run", "cache", "sweep"};

double
quantile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const double pos = q * double(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - double(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void
parseMix(const std::string &spec, double &run_w, double &cache_w,
         double &sweep_w)
{
    run_w = cache_w = sweep_w = 0.0;
    std::size_t start = 0;
    while (start < spec.size()) {
        const std::size_t comma = spec.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? spec.size() : comma;
        const std::string part = spec.substr(start, end - start);
        const std::size_t eq = part.find('=');
        if (eq == std::string::npos)
            fatal("loadgen: bad mix clause '", part, "'");
        const std::string name = part.substr(0, eq);
        const double w = std::stod(part.substr(eq + 1));
        if (w < 0.0)
            fatal("loadgen: negative mix weight in '", part, "'");
        if (name == "run")
            run_w = w;
        else if (name == "cache")
            cache_w = w;
        else if (name == "sweep")
            sweep_w = w;
        else
            fatal("loadgen: unknown mix component '", name, "'");
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (run_w + cache_w + sweep_w <= 0.0)
        fatal("loadgen: mix has no positive weight");
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> endpoints;
    double rate = 50.0;
    unsigned conns = 4;
    double duration_s = 10.0;
    std::uint64_t seed = 1;
    std::string mix = "run=8,cache=2";
    PointSpec knobs;
    knobs.warmup_cycles = 1000;
    knobs.measure_cycles = 10000;
    std::uint64_t fake_work_us = 0;
    std::uint64_t max_wait_ms = 10000;
    std::string json_path = "BENCH_serve.json";

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    fatal("missing value for ", arg);
                return argv[++i];
            };
            if (arg == "--socket" || arg == "--connect") {
                endpoints.push_back(next());
            } else if (arg == "--rate") {
                rate = std::stod(next());
                if (rate <= 0.0)
                    fatal("--rate must be positive");
            } else if (arg == "--conns") {
                const long v = std::stol(next());
                if (v < 1)
                    fatal("--conns must be >= 1");
                conns = static_cast<unsigned>(v);
            } else if (arg == "--duration") {
                duration_s = std::stod(next());
                if (duration_s <= 0.0)
                    fatal("--duration must be positive");
            } else if (arg == "--seed") {
                seed = std::stoull(next());
            } else if (arg == "--mix") {
                mix = next();
            } else if (arg == "--bench") {
                knobs.benchmark = next();
            } else if (arg == "--policy") {
                knobs.policy = next();
            } else if (arg == "--warmup") {
                knobs.warmup_cycles = std::stoull(next());
            } else if (arg == "--cycles") {
                knobs.measure_cycles = std::stoull(next());
            } else if (arg == "--cores") {
                const unsigned long v = std::stoul(next());
                if (v > kMaxCores)
                    fatal("--cores must be <= ", kMaxCores);
                knobs.num_cores = static_cast<std::uint32_t>(v);
            } else if (arg == "--fake-work-us") {
                fake_work_us = std::stoull(next());
            } else if (arg == "--max-wait-ms") {
                max_wait_ms = std::stoull(next());
            } else if (arg == "--json") {
                json_path = next();
            } else if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else {
                usage();
                fatal("unknown option ", arg);
            }
        }
        if (endpoints.empty())
            endpoints = {defaultSocketPath()};

        double run_w = 0, cache_w = 0, sweep_w = 0;
        parseMix(mix, run_w, cache_w, sweep_w);

        FakeWork fake(seed ^ 0x5ca1ab1eULL);
        if (fake_work_us > 0) {
            std::cerr << "thermctl_loadgen: fake work calibrated at "
                      << fake.itersPerUs() << " iters/us\n";
        }

        // ---- precompute the open-loop schedule
        Rng arrivals_rng(seed);
        Rng mix_rng = Rng(seed).fork(1);
        std::vector<Arrival> schedule;
        const double total_w = run_w + cache_w + sweep_w;
        double t = 0.0;
        for (;;) {
            // Exponential inter-arrival: -ln(U)/rate, U in (0, 1].
            const double u = 1.0 - arrivals_rng.uniform();
            t += -std::log(u) / rate;
            if (t >= duration_s)
                break;
            Arrival a;
            a.due_s = t;
            const double pick = mix_rng.uniform() * total_w;
            a.type = pick < run_w ? MsgType::RunRequest
                     : pick < run_w + cache_w
                         ? MsgType::CacheQueryRequest
                         : MsgType::SweepRequest;
            schedule.push_back(a);
        }
        if (schedule.empty())
            fatal("loadgen: schedule is empty (rate x duration too low)");

        // Pre-encode one request frame per type; every arrival of a
        // type sends identical bytes, so the server's coalescing and
        // cache layers see realistic duplicate traffic.
        RunRequest run_req;
        run_req.point = knobs;
        SweepRequest sweep_req;
        sweep_req.benchmarks = {knobs.benchmark};
        sweep_req.policies = {knobs.policy};
        sweep_req.warmup_cycles = knobs.warmup_cycles;
        sweep_req.measure_cycles = knobs.measure_cycles;
        sweep_req.num_cores = knobs.num_cores;
        sweep_req.coupling_r = knobs.coupling_r;
        sweep_req.chip_budget = knobs.chip_budget;
        sweep_req.budget_policy = knobs.budget_policy;
        CacheQueryRequest cache_req;
        cache_req.point = knobs;
        const std::string run_frame =
            encodeFrame(MsgType::RunRequest, run_req.encode());
        const std::string sweep_frame =
            encodeFrame(MsgType::SweepRequest, sweep_req.encode());
        const std::string cache_frame =
            encodeFrame(MsgType::CacheQueryRequest, cache_req.encode());
        auto frameFor = [&](MsgType type) -> const std::string & {
            if (type == MsgType::RunRequest)
                return run_frame;
            if (type == MsgType::SweepRequest)
                return sweep_frame;
            return cache_frame;
        };

        // ---- dial the connection pool, dealt round-robin across the
        // endpoints so a multi-node cluster sees an even share of
        // connections (and each connection redials its own node).
        std::vector<Conn> pool(conns);
        for (std::size_t i = 0; i < pool.size(); ++i) {
            pool[i].endpoint = endpoints[i % endpoints.size()];
            pool[i].fd = dial(pool[i].endpoint);
        }

        Tally tally;
        std::vector<double> latencies_ms;
        latencies_ms.reserve(schedule.size());
        std::vector<double> latencies_by_type_ms[3];

        auto kick = [&](Conn &c) {
            // Start the next queued request if the line is free.
            if (c.in_flight || c.queue.empty())
                return;
            c.current = c.queue.front();
            c.queue.pop_front();
            c.in_flight = true;
            c.wbuf += frameFor(schedule[c.current].type);
        };

        auto failConn = [&](Conn &c) {
            // Count everything this connection still owed as transport
            // failures, then redial so the remaining schedule can run.
            // The redial itself may fail (server draining/restarting):
            // mark the connection dead (fd -1, ignored by poll) and
            // retry it when the next arrival lands on it.
            tally.transport_errors +=
                (c.in_flight ? 1 : 0) + c.queue.size();
            tally.completed += (c.in_flight ? 1 : 0) + c.queue.size();
            c.queue.clear();
            c.in_flight = false;
            c.wbuf.clear();
            c.woff = 0;
            c.assembler = FrameAssembler();
            ::close(c.fd);
            c.fd = dial(c.endpoint, /*must_succeed=*/false);
            if (c.fd < 0) {
                std::cerr << "thermctl_loadgen: reconnect failed: "
                          << std::strerror(errno)
                          << " (will retry on the next arrival)\n";
            }
        };

        const Clock::time_point start = Clock::now();
        std::size_t next_arrival = 0;
        std::size_t rr = 0; // round-robin cursor

        while (tally.completed < schedule.size()) {
            const double now_s =
                std::chrono::duration<double>(Clock::now() - start)
                    .count();

            // ---- admit due arrivals
            while (next_arrival < schedule.size()
                   && schedule[next_arrival].due_s <= now_s) {
                Conn &c = pool[rr++ % pool.size()];
                if (c.fd < 0)
                    c.fd = dial(c.endpoint, /*must_succeed=*/false);
                if (c.fd < 0) {
                    // Still unreachable: this arrival is a transport
                    // failure, charged now (open loop — it was due).
                    tally.transport_errors++;
                    tally.completed++;
                    next_arrival++;
                    continue;
                }
                c.queue.push_back(next_arrival++);
                kick(c);
            }

            // ---- grace period bookkeeping
            if (next_arrival == schedule.size()
                && now_s > duration_s + double(max_wait_ms) / 1000.0) {
                std::cerr << "thermctl_loadgen: gave up on "
                          << schedule.size() - tally.completed
                          << " outstanding request(s)\n";
                tally.transport_errors +=
                    schedule.size() - tally.completed;
                tally.completed = schedule.size();
                break;
            }

            // ---- poll for readiness
            std::vector<pollfd> fds(pool.size());
            for (std::size_t i = 0; i < pool.size(); ++i) {
                short events = 0;
                if (pool[i].woff < pool[i].wbuf.size())
                    events |= POLLOUT;
                if (pool[i].in_flight)
                    events |= POLLIN;
                fds[i] = {pool[i].fd, events, 0};
            }
            int timeout = 50;
            if (next_arrival < schedule.size()) {
                const double wait_s =
                    schedule[next_arrival].due_s - now_s;
                timeout = std::max(
                    0, static_cast<int>(std::ceil(wait_s * 1000.0)));
                timeout = std::min(timeout, 50);
            }
            const int rc = ::poll(fds.data(), fds.size(), timeout);
            if (rc < 0 && errno != EINTR)
                fatal("loadgen: poll: ", std::strerror(errno));

            // ---- service connections
            for (std::size_t i = 0; i < pool.size(); ++i) {
                Conn &c = pool[i];
                const short re = fds[i].revents;
                if (re & (POLLERR | POLLNVAL | POLLHUP)) {
                    failConn(c);
                    continue;
                }
                if (re & POLLOUT) {
                    const ssize_t n =
                        ::send(c.fd, c.wbuf.data() + c.woff,
                               c.wbuf.size() - c.woff, MSG_NOSIGNAL);
                    if (n < 0 && errno != EAGAIN && errno != EINTR) {
                        failConn(c);
                        continue;
                    }
                    if (n > 0)
                        c.woff += static_cast<std::size_t>(n);
                    if (c.woff == c.wbuf.size()) {
                        c.wbuf.clear();
                        c.woff = 0;
                    }
                }
                if (!(re & POLLIN))
                    continue;
                char buf[16384];
                const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
                if (n <= 0) {
                    if (n < 0 && (errno == EAGAIN || errno == EINTR))
                        continue;
                    failConn(c);
                    continue;
                }
                c.assembler.feed(std::string_view(
                    buf, static_cast<std::size_t>(n)));
                for (;;) {
                    MsgType type;
                    std::string payload;
                    const FrameAssembler::Next what =
                        c.assembler.next(type, payload);
                    if (what == FrameAssembler::Next::NeedMore)
                        break;
                    if (what == FrameAssembler::Next::Bad) {
                        tally.protocol_errors++;
                        failConn(c);
                        break;
                    }
                    if (!c.in_flight) {
                        tally.protocol_errors++; // unsolicited reply
                        failConn(c);
                        break;
                    }
                    const Arrival &a = schedule[c.current];
                    const double lat_ms =
                        (std::chrono::duration<double>(Clock::now()
                                                       - start)
                             .count()
                         - a.due_s)
                        * 1000.0;
                    c.in_flight = false;
                    tally.completed++;
                    bool refused = false;
                    if (type == MsgType::ErrorReply) {
                        refused = true;
                    } else if (type != expectedReply(a.type)) {
                        tally.protocol_errors++;
                        failConn(c);
                        break;
                    } else if (type == MsgType::RunReply) {
                        RunReply r;
                        if (!RunReply::decode(payload, r)) {
                            tally.protocol_errors++;
                            failConn(c);
                            break;
                        }
                        refused = r.point.error != ServeError::None;
                    } else if (type == MsgType::SweepReply) {
                        SweepReply r;
                        if (!SweepReply::decode(payload, r)) {
                            tally.protocol_errors++;
                            failConn(c);
                            break;
                        }
                        for (const auto &p : r.points)
                            refused |= p.error != ServeError::None;
                    } else {
                        CacheQueryReply r;
                        if (!CacheQueryReply::decode(payload, r)) {
                            tally.protocol_errors++;
                            failConn(c);
                            break;
                        }
                    }
                    if (refused)
                        tally.refused++;
                    else
                        tally.ok++;
                    latencies_ms.push_back(lat_ms);
                    latencies_by_type_ms[typeIndex(a.type)].push_back(
                        lat_ms);
                    fake.run(fake_work_us);
                    kick(c);
                }
            }
        }
        const double elapsed_s =
            std::chrono::duration<double>(Clock::now() - start).count();

        for (auto &c : pool) {
            if (c.fd >= 0)
                ::close(c.fd);
        }

        // ---- report
        std::sort(latencies_ms.begin(), latencies_ms.end());
        const double p50 = quantile(latencies_ms, 0.50);
        const double p90 = quantile(latencies_ms, 0.90);
        const double p99 = quantile(latencies_ms, 0.99);
        const double p999 = quantile(latencies_ms, 0.999);
        double mean = 0.0;
        for (double v : latencies_ms)
            mean += v;
        if (!latencies_ms.empty())
            mean /= double(latencies_ms.size());
        const double max_ms =
            latencies_ms.empty() ? 0.0 : latencies_ms.back();
        const double throughput =
            elapsed_s > 0.0 ? double(tally.ok) / elapsed_s : 0.0;

        std::cout << "scheduled    : " << schedule.size() << "\n"
                  << "completed ok : " << tally.ok << "\n"
                  << "refused      : " << tally.refused << "\n"
                  << "transport err: " << tally.transport_errors << "\n"
                  << "protocol err : " << tally.protocol_errors << "\n"
                  << "elapsed      : " << elapsed_s << " s\n"
                  << "throughput   : " << throughput << " req/s\n"
                  << "latency p50  : " << p50 << " ms\n"
                  << "latency p90  : " << p90 << " ms\n"
                  << "latency p99  : " << p99 << " ms\n"
                  << "latency p999 : " << p999 << " ms\n";
        for (std::size_t ti = 0; ti < 3; ++ti) {
            auto &v = latencies_by_type_ms[ti];
            if (v.empty())
                continue;
            std::sort(v.begin(), v.end());
            std::cout << "latency[" << kTypeNames[ti]
                      << "] : n=" << v.size() << " p50="
                      << quantile(v, 0.50) << " p90=" << quantile(v, 0.90)
                      << " p99=" << quantile(v, 0.99) << " ms\n";
        }

        if (!json_path.empty()) {
            std::ofstream out(json_path);
            if (!out)
                fatal("loadgen: cannot write ", json_path);
            out << "{\n"
                << "  \"benchmark\": \"serve_loadgen\",\n"
                << "  \"unix_time\": " << std::time(nullptr) << ",\n"
                << "  \"config\": {\n"
                << "    \"endpoints\": " << endpoints.size() << ",\n"
                << "    \"rate\": " << rate << ",\n"
                << "    \"conns\": " << conns << ",\n"
                << "    \"duration_s\": " << duration_s << ",\n"
                << "    \"seed\": " << seed << ",\n"
                << "    \"mix\": \"" << mix << "\",\n"
                << "    \"benchmark\": \"" << knobs.benchmark << "\",\n"
                << "    \"policy\": \"" << knobs.policy << "\",\n"
                << "    \"warmup_cycles\": " << knobs.warmup_cycles
                << ",\n"
                << "    \"measure_cycles\": " << knobs.measure_cycles
                << ",\n"
                << "    \"fake_work_us\": " << fake_work_us << "\n"
                << "  },\n"
                << "  \"requests\": {\n"
                << "    \"scheduled\": " << schedule.size() << ",\n"
                << "    \"ok\": " << tally.ok << ",\n"
                << "    \"refused\": " << tally.refused << ",\n"
                << "    \"transport_errors\": "
                << tally.transport_errors << ",\n"
                << "    \"protocol_errors\": " << tally.protocol_errors
                << "\n"
                << "  },\n"
                << "  \"elapsed_s\": " << elapsed_s << ",\n"
                << "  \"throughput_rps\": " << throughput << ",\n"
                << "  \"latency_ms\": {\n"
                << "    \"mean\": " << mean << ",\n"
                << "    \"p50\": " << p50 << ",\n"
                << "    \"p90\": " << p90 << ",\n"
                << "    \"p99\": " << p99 << ",\n"
                << "    \"p999\": " << p999 << ",\n"
                << "    \"max\": " << max_ms << "\n"
                << "  },\n"
                << "  \"latency_by_type_ms\": {\n";
            for (std::size_t ti = 0; ti < 3; ++ti) {
                const auto &v = latencies_by_type_ms[ti]; // sorted above
                double tmean = 0.0;
                for (double x : v)
                    tmean += x;
                if (!v.empty())
                    tmean /= double(v.size());
                out << "    \"" << kTypeNames[ti] << "\": {\n"
                    << "      \"count\": " << v.size() << ",\n"
                    << "      \"mean\": " << tmean << ",\n"
                    << "      \"p50\": " << quantile(v, 0.50) << ",\n"
                    << "      \"p90\": " << quantile(v, 0.90) << ",\n"
                    << "      \"p99\": " << quantile(v, 0.99) << ",\n"
                    << "      \"max\": " << (v.empty() ? 0.0 : v.back())
                    << "\n"
                    << "    }" << (ti + 1 < 3 ? "," : "") << "\n";
            }
            out << "  }\n"
                << "}\n";
        }

        if (tally.transport_errors > 0 || tally.protocol_errors > 0)
            return 2;
        return tally.refused > 0 ? 3 : 0;
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
}
